// Negative-compile cases for the thread-safety annotations in
// src/util/sync.h. Each KOSR_NC_CASE_* macro selects one snippet that MUST
// fail to compile under `clang -fsyntax-only -Wthread-safety -Werror`; the
// CTest entries in tests/CMakeLists.txt compile this file once per case
// with WILL_FAIL TRUE, so a wrapper regression that silently disables the
// analysis (e.g. a macro expanding to nothing under clang) turns these
// tests red. KOSR_NC_CASE_CONTROL is the positive control: correctly
// locked code that must compile *clean* — it fails instead if the wrapper
// annotations themselves are malformed.
//
// Exactly one KOSR_NC_CASE_* macro is defined per compile; the file is
// never linked, only parsed.

#include "src/util/sync.h"

namespace kosr::negative_compile {

class Counter {
 public:
  // Correct usage: scoped lock covers the guarded field.
  void Increment() KOSR_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    ++value_;
  }

  // Declares the caller-holds-lock contract checked by CASE_MISSING_REQUIRES.
  void IncrementLocked() KOSR_REQUIRES(mutex_) { ++value_; }

#if defined(KOSR_NC_CASE_UNGUARDED_ACCESS)
  // Touches a GUARDED_BY field with no lock held: -Wthread-safety must
  // reject ("writing variable 'value_' requires holding mutex 'mutex_'").
  void IncrementUnguarded() { ++value_; }
#endif

#if defined(KOSR_NC_CASE_MISSING_REQUIRES)
  // Calls a REQUIRES(mutex_) method without holding it ("calling function
  // 'IncrementLocked' requires holding mutex 'mutex_' exclusively").
  void CallWithoutLock() { IncrementLocked(); }
#endif

#if defined(KOSR_NC_CASE_DOUBLE_ACQUIRE)
  // Acquires the same mutex twice in one scope ("acquiring mutex 'mutex_'
  // that is already held"). Mutex is non-reentrant; this would deadlock at
  // runtime, so it must not compile.
  void DoubleAcquire() KOSR_EXCLUDES(mutex_) {
    MutexLock outer(mutex_);
    MutexLock inner(mutex_);
    ++value_;
  }
#endif

#if defined(KOSR_NC_CASE_CONTROL)
  // Positive control: exercises every wrapper the production code uses
  // (exclusive, shared, condvar wait loop) with correct locking. This
  // compile must SUCCEED under -Wthread-safety -Werror; a failure here
  // means the wrappers in sync.h are themselves broken, which would also
  // invalidate the negative cases above.
  void WaitForPositive() KOSR_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    while (value_ <= 0) cv_.Wait(mutex_);
  }

  int Read() const KOSR_EXCLUDES(shared_mutex_) {
    ReaderMutexLock lock(shared_mutex_);
    return shared_value_;
  }

  void Write(int v) KOSR_EXCLUDES(shared_mutex_) {
    WriterMutexLock lock(shared_mutex_);
    shared_value_ = v;
  }

  void Notify() { cv_.NotifyAll(); }
#endif

 private:
  mutable Mutex mutex_;
  CondVar cv_;
  int value_ KOSR_GUARDED_BY(mutex_) = 0;

  mutable SharedMutex shared_mutex_;
  int shared_value_ KOSR_GUARDED_BY(shared_mutex_) = 0;
};

}  // namespace kosr::negative_compile
