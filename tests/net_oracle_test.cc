// Concurrent-connection oracle suite for the TCP front-end (ISSUE 10
// satellite): N client threads pipeline interleaved QUERY / SET_EDGE /
// FLUSH_UPDATES traffic against one server while a writer advances the
// snapshot version over its own connection. Every response is
// cross-checked against a direct in-process Submit oracle sampled once
// per published version, request_id correlation is exercised by the
// pipelining itself, and per-connection version monotonicity is asserted
// on every ack.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "src/core/engine.h"
#include "src/net/client.h"
#include "src/net/server.h"
#include "src/service/protocol.h"
#include "src/service/service.h"
#include "tests/test_util.h"

namespace kosr {
namespace {

using net::ClientResponse;
using net::FramedClient;
using net::NetServer;

std::string Token(const std::string& line, const std::string& key) {
  size_t pos = line.find(key);
  if (pos == std::string::npos) return "";
  pos += key.size();
  size_t end = line.find(' ', pos);
  return line.substr(pos, (end == std::string::npos ? line.size() : end) -
                              pos);
}

uint64_t VersionOf(const std::string& line) {
  const std::string token = Token(line, "version=");
  return token.empty() ? 0 : std::stoull(token);
}

/// One reader observation, verified against the oracle after the join.
struct Observation {
  size_t pool_index;
  uint64_t version;
  std::string costs;
};

TEST(NetOracleTest, ConcurrentPipelinedClientsMatchDirectSubmitOracle) {
  auto inst = testing::MakeRandomInstance(60, 240, 4, 4242);

  // Arcs that appear exactly once as a (u, v) pair: SET_EDGE on one of
  // these at its current weight is a pure no-op (nothing to collapse, no
  // weight change), so readers can issue real update verbs without
  // perturbing the version the writer controls.
  std::map<std::pair<VertexId, VertexId>, int> arc_count;
  std::map<std::pair<VertexId, VertexId>, Weight> arc_weight;
  for (auto [u, v, w] : inst.graph.ToEdges()) {
    ++arc_count[{u, v}];
    arc_weight[{u, v}] = w;
  }
  std::vector<std::tuple<VertexId, VertexId, Weight>> unique_arcs;
  for (const auto& [uv, count] : arc_count) {
    if (count == 1) {
      unique_arcs.emplace_back(uv.first, uv.second, arc_weight[uv]);
    }
  }
  ASSERT_GE(unique_arcs.size(), 6u);

  KosrEngine engine(inst.graph, inst.categories);
  engine.BuildIndexes();
  service::ServiceConfig config;
  config.num_workers = testing::TestThreads();
  config.queue_capacity = 512;
  config.cache_capacity = 128;
  service::KosrService service(std::move(engine), config);
  NetServer server(service);
  server.Start();

  const std::vector<std::string> pool = {
      "QUERY 0 59 0,1 3",  "QUERY 5 40 1,2 2",   "QUERY 12 58 0 4",
      "QUERY 3 47 2,3 3",  "QUERY 20 55 1 2",    "QUERY 7 33 0,2,1 2",
      "QUERY 15 59 3 3",   "QUERY 1 29 1,0 4",
  };
  std::vector<service::ServiceRequest> pool_requests(pool.size());
  for (size_t i = 0; i < pool.size(); ++i) {
    std::string error;
    ASSERT_TRUE(service::ParseQueryLine(pool[i], &pool_requests[i], &error))
        << error;
  }

  // Oracle: costs per (version, pool index), sampled by direct Submit in
  // the window where that version is current. The writer below is the only
  // source of version bumps, and it samples before bumping again, so each
  // sample is pinned to the version it is keyed under.
  std::map<uint64_t, std::vector<std::string>> oracle;
  const auto sample = [&](uint64_t version) {
    std::vector<std::string> costs(pool.size());
    for (size_t i = 0; i < pool.size(); ++i) {
      const std::string direct =
          FormatQueryResponse(service, service.Submit(pool_requests[i]));
      ASSERT_EQ(VersionOf(direct), version) << direct;
      costs[i] = Token(direct, "costs=");
    }
    oracle[version] = std::move(costs);
  };
  sample(1);

  // Readers: each connection pipelines rounds of
  //   SET_EDGE (no-op) | FLUSH_UPDATES | pool queries
  // and records (pool index, version, costs) plus both ack versions.
  constexpr int kReaders = 4;
  constexpr int kRounds = 12;
  std::vector<std::vector<Observation>> observations(kReaders);
  std::vector<std::string> failures(kReaders);
  std::vector<std::thread> readers;
  for (int tid = 0; tid < kReaders; ++tid) {
    readers.emplace_back([&, tid] {
      try {
        auto [eu, ev, ew] = unique_arcs[1 + tid];  // index 0 is the writer's
        FramedClient client("127.0.0.1", server.port());
        std::vector<std::string> lines;
        lines.push_back("SET_EDGE " + std::to_string(eu) + " " +
                        std::to_string(ev) + " " + std::to_string(ew));
        lines.push_back("FLUSH_UPDATES");
        for (const std::string& query : pool) lines.push_back(query);
        uint64_t last_ack_version = 0;
        for (int round = 0; round < kRounds; ++round) {
          const auto responses =
              net::ExchangePipelined(client, lines, lines.size());
          ASSERT_EQ(responses.size(), lines.size());
          // The no-op SET_EDGE must not perturb the graph...
          ASSERT_EQ(Token(responses[0].payload, "changed="), "0")
              << responses[0].payload;
          // ...and ack versions on one connection never go backwards.
          const uint64_t ack1 = VersionOf(responses[0].payload);
          const uint64_t ack2 = VersionOf(responses[1].payload);
          ASSERT_GE(ack1, last_ack_version);
          ASSERT_GE(ack2, ack1);
          last_ack_version = ack2;
          for (size_t i = 0; i < pool.size(); ++i) {
            const ClientResponse& r = responses[2 + i];
            ASSERT_EQ(r.status, net::kStatusOk) << r.payload;
            ASSERT_EQ(r.payload.rfind("OK ROUTES", 0), 0u) << r.payload;
            const uint64_t version = VersionOf(r.payload);
            // A fresh computation pipelined behind an ack runs against a
            // snapshot at least as new as the ack (frames execute in
            // stream order). Cache hits are exempt: they report the
            // version that admitted the entry, which may legitimately be
            // older — the oracle check below still holds them to it.
            if (Token(r.payload, "cached=") == "0") {
              ASSERT_GE(version, last_ack_version);
            }
            observations[tid].push_back(
                {i, version, Token(r.payload, "costs=")});
          }
        }
      } catch (const std::exception& e) {
        failures[tid] = e.what();
      }
    });
  }

  // Writer: advance the snapshot version over its own socket, sampling the
  // oracle right after each ack (and before the next bump).
  {
    auto [wu, wv, ww] = unique_arcs[0];
    FramedClient writer("127.0.0.1", server.port());
    constexpr int kUpdates = 8;
    for (int i = 1; i <= kUpdates; ++i) {
      writer.SendLine("SET_EDGE " + std::to_string(wu) + " " +
                      std::to_string(wv) + " " + std::to_string(ww + 10 * i));
      auto ack = writer.Recv();
      ASSERT_TRUE(ack.has_value());
      ASSERT_EQ(Token(ack->payload, "changed="), "1") << ack->payload;
      const uint64_t version = VersionOf(ack->payload);
      ASSERT_EQ(version, static_cast<uint64_t>(1 + i)) << ack->payload;
      sample(version);
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }

  for (std::thread& t : readers) t.join();
  for (int tid = 0; tid < kReaders; ++tid) {
    ASSERT_EQ(failures[tid], "") << "reader " << tid;
  }

  // Every observed answer must be byte-identical (costs=) to the direct
  // Submit oracle at the version the response itself reported.
  size_t checked = 0;
  for (int tid = 0; tid < kReaders; ++tid) {
    ASSERT_EQ(observations[tid].size(), size_t{kRounds} * pool.size());
    for (const Observation& obs : observations[tid]) {
      auto it = oracle.find(obs.version);
      ASSERT_NE(it, oracle.end())
          << "reader " << tid << " saw unsampled version " << obs.version;
      EXPECT_EQ(obs.costs, it->second[obs.pool_index])
          << "reader " << tid << " pool " << obs.pool_index << " version "
          << obs.version;
      ++checked;
    }
  }
  EXPECT_EQ(checked, size_t{kReaders} * kRounds * pool.size());

  server.Shutdown();
  service.Stop();
}

}  // namespace
}  // namespace kosr
