#include "src/nn/dijkstra_nn.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/graph/generators.h"
#include "tests/test_util.h"

namespace kosr {
namespace {

std::vector<Cost> BruteForceNnDists(const Graph& graph,
                                    const CategoryTable& cats, CategoryId c,
                                    VertexId v) {
  auto dist = DijkstraAllDistances(graph, v);
  std::vector<Cost> out;
  for (VertexId m : cats.Members(c)) {
    if (dist[m] < kInfCost) out.push_back(dist[m]);
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(DijkstraKnnCursorTest, MatchesBruteForce) {
  for (uint64_t seed : {21u, 22u}) {
    auto inst = testing::MakeRandomInstance(50, 200, 4, seed);
    for (CategoryId c = 0; c < 4; ++c) {
      for (VertexId v = 0; v < 50; v += 13) {
        auto expected = BruteForceNnDists(inst.graph, inst.categories, c, v);
        DijkstraKnnCursor cursor(&inst.graph, &inst.categories, c, v, 1,
                                 nullptr);
        QueryStats stats;
        for (size_t x = 1; x <= expected.size(); ++x) {
          auto got = cursor.Get(static_cast<uint32_t>(x), &stats);
          ASSERT_TRUE(got.has_value());
          EXPECT_EQ(got->dist, expected[x - 1]);
        }
        EXPECT_FALSE(
            cursor.Get(static_cast<uint32_t>(expected.size()) + 1, &stats)
                .has_value());
      }
    }
  }
}

TEST(DijkstraKnnCursorTest, ResumesWithoutRecomputing) {
  auto inst = testing::MakeRandomInstance(40, 180, 2, 30);
  DijkstraKnnCursor cursor(&inst.graph, &inst.categories, 0, 5, 1, nullptr);
  QueryStats stats;
  auto first = cursor.Get(1, &stats);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(stats.nn_queries, 1u);
  // Cached re-read costs nothing.
  auto again = cursor.Get(1, &stats);
  EXPECT_EQ(stats.nn_queries, 1u);
  EXPECT_EQ(again->vertex, first->vertex);
}

TEST(DijkstraNnProviderTest, DestinationSlotAndCursorReuse) {
  Figure1 fig = MakeFigure1();
  CategorySequence seq = {Figure1::MA, Figure1::RE, Figure1::CI};
  DijkstraNnProvider provider(&fig.graph, &fig.categories, seq, Figure1::t);
  QueryStats stats;
  auto nn = provider.FindNN(Figure1::s, 1, 1, &stats);
  ASSERT_TRUE(nn.has_value());
  EXPECT_EQ(nn->vertex, Figure1::a);
  EXPECT_EQ(nn->dist, 8);
  auto dest = provider.FindNN(Figure1::d, 4, 1, &stats);
  ASSERT_TRUE(dest.has_value());
  EXPECT_EQ(dest->vertex, Figure1::t);
  EXPECT_EQ(dest->dist, 4);
  EXPECT_FALSE(provider.FindNN(Figure1::d, 4, 2, &stats).has_value());
}

TEST(DijkstraNnProviderTest, FilterRespected) {
  Figure1 fig = MakeFigure1();
  CategorySequence seq = {Figure1::MA};
  SlotFilter only_c = [](uint32_t, VertexId v) { return v == Figure1::c; };
  DijkstraNnProvider provider(&fig.graph, &fig.categories, seq, Figure1::t,
                              only_c);
  auto nn = provider.FindNN(Figure1::s, 1, 1, nullptr);
  ASSERT_TRUE(nn.has_value());
  EXPECT_EQ(nn->vertex, Figure1::c);
}

}  // namespace
}  // namespace kosr
