#include "src/ch/contraction_hierarchy.h"

#include <gtest/gtest.h>

#include "src/graph/generators.h"
#include "src/graph/graph.h"
#include "src/labeling/hub_labeling.h"

namespace kosr {
namespace {

void ExpectAllPairsMatch(const Graph& graph, const ContractionHierarchy& ch,
                         uint32_t stride_s = 1, uint32_t stride_t = 1) {
  for (VertexId s = 0; s < graph.num_vertices(); s += stride_s) {
    auto dist = DijkstraAllDistances(graph, s);
    for (VertexId t = 0; t < graph.num_vertices(); t += stride_t) {
      EXPECT_EQ(ch.Query(s, t), dist[t]) << "s=" << s << " t=" << t;
    }
  }
}

TEST(ContractionHierarchyTest, Figure1AllPairs) {
  Figure1 fig = MakeFigure1();
  auto ch = ContractionHierarchy::Build(fig.graph);
  ExpectAllPairsMatch(fig.graph, ch);
}

TEST(ContractionHierarchyTest, RandomGraphsAllPairs) {
  for (uint64_t seed : {41u, 42u, 43u}) {
    Graph g = MakeRandomGraph(50, 200, seed);
    auto ch = ContractionHierarchy::Build(g);
    ExpectAllPairsMatch(g, ch);
  }
}

TEST(ContractionHierarchyTest, GridSample) {
  Graph g = MakeGridRoadNetwork(8, 8, /*seed=*/9);
  auto ch = ContractionHierarchy::Build(g);
  ExpectAllPairsMatch(g, ch, 5, 3);
}

TEST(ContractionHierarchyTest, DisconnectedPairsAreInf) {
  Graph g = Graph::FromEdges(4, {{0, 1, 1}, {2, 3, 1}});
  auto ch = ContractionHierarchy::Build(g);
  EXPECT_EQ(ch.Query(0, 3), kInfCost);
  EXPECT_EQ(ch.Query(0, 1), 1);
  EXPECT_EQ(ch.Query(1, 1), 0);
}

TEST(ContractionHierarchyTest, QueryPathIsValidShortestPath) {
  for (uint64_t seed : {61u, 62u}) {
    Graph g = MakeRandomGraph(50, 220, seed);
    auto ch = ContractionHierarchy::Build(g);
    for (VertexId s = 0; s < 50; s += 7) {
      auto dist = DijkstraAllDistances(g, s);
      for (VertexId t = 0; t < 50; t += 5) {
        auto path = ch.QueryPath(s, t);
        if (dist[t] == kInfCost) {
          EXPECT_TRUE(path.empty());
          continue;
        }
        ASSERT_FALSE(path.empty()) << s << "->" << t;
        EXPECT_EQ(path.front(), s);
        EXPECT_EQ(path.back(), t);
        Cost total = 0;
        for (size_t i = 0; i + 1 < path.size(); ++i) {
          Cost w = g.ArcWeight(path[i], path[i + 1]);
          ASSERT_LT(w, kInfCost)
              << "missing arc " << path[i] << "->" << path[i + 1];
          total += w;
        }
        EXPECT_EQ(total, dist[t]) << s << "->" << t;
      }
    }
  }
}

TEST(ContractionHierarchyTest, QueryPathOnGridExpandsShortcuts) {
  Graph g = MakeGridRoadNetwork(9, 9, /*seed=*/23);
  auto ch = ContractionHierarchy::Build(g);
  ASSERT_GT(ch.num_shortcuts(), 0u);  // shortcuts exist, so expansion runs
  auto dist = DijkstraAllDistances(g, 0);
  auto path = ch.QueryPath(0, 80);
  ASSERT_FALSE(path.empty());
  Cost total = 0;
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    total += g.ArcWeight(path[i], path[i + 1]);
  }
  EXPECT_EQ(total, dist[80]);
  EXPECT_EQ(ch.QueryPath(4, 4), std::vector<VertexId>{4});
}

TEST(ContractionHierarchyTest, ImportanceOrderIsPermutation) {
  Graph g = MakeRandomGraph(30, 120, 3);
  auto ch = ContractionHierarchy::Build(g);
  auto order = ch.ImportanceOrder();
  ASSERT_EQ(order.size(), 30u);
  std::vector<bool> seen(30, false);
  for (VertexId v : order) {
    ASSERT_LT(v, 30u);
    EXPECT_FALSE(seen[v]);
    seen[v] = true;
  }
}

TEST(ContractionHierarchyTest, ImportanceOrderWorksAsHubOrder) {
  Graph g = MakeGridRoadNetwork(7, 7, /*seed=*/13);
  auto ch = ContractionHierarchy::Build(g);
  HubLabeling hl;
  hl.Build(g, ch.ImportanceOrder());
  for (VertexId s = 0; s < g.num_vertices(); s += 6) {
    auto dist = DijkstraAllDistances(g, s);
    for (VertexId t = 0; t < g.num_vertices(); t += 4) {
      EXPECT_EQ(hl.Query(s, t), dist[t]);
    }
  }
}

}  // namespace
}  // namespace kosr
