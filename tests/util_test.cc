#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "src/util/min_heap.h"
#include "src/util/stats.h"
#include "src/util/timer.h"
#include "src/util/zipf.h"

namespace kosr {
namespace {

TEST(IndexedMinHeapTest, ExtractsInPriorityOrder) {
  IndexedMinHeap heap(10);
  heap.InsertOrDecrease(3, 30);
  heap.InsertOrDecrease(1, 10);
  heap.InsertOrDecrease(7, 20);
  EXPECT_EQ(heap.Size(), 3u);
  EXPECT_EQ(heap.ExtractMin(), (std::pair<Cost, uint32_t>{10, 1}));
  EXPECT_EQ(heap.ExtractMin(), (std::pair<Cost, uint32_t>{20, 7}));
  EXPECT_EQ(heap.ExtractMin(), (std::pair<Cost, uint32_t>{30, 3}));
  EXPECT_TRUE(heap.Empty());
}

TEST(IndexedMinHeapTest, DecreaseKeyMovesElementUp) {
  IndexedMinHeap heap(10);
  heap.InsertOrDecrease(0, 100);
  heap.InsertOrDecrease(1, 50);
  EXPECT_TRUE(heap.InsertOrDecrease(0, 10));
  EXPECT_EQ(heap.ExtractMin().second, 0u);
}

TEST(IndexedMinHeapTest, IncreaseIsIgnored) {
  IndexedMinHeap heap(4);
  heap.InsertOrDecrease(2, 5);
  EXPECT_FALSE(heap.InsertOrDecrease(2, 50));
  EXPECT_EQ(heap.PriorityOf(2), 5);
}

TEST(IndexedMinHeapTest, ClearResetsMembership) {
  IndexedMinHeap heap(8);
  heap.InsertOrDecrease(5, 1);
  heap.Clear();
  EXPECT_TRUE(heap.Empty());
  EXPECT_FALSE(heap.Contains(5));
  heap.InsertOrDecrease(5, 2);
  EXPECT_EQ(heap.ExtractMin(), (std::pair<Cost, uint32_t>{2, 5u}));
}

TEST(IndexedMinHeapTest, RandomizedAgainstStdSort) {
  std::mt19937_64 rng(42);
  for (int round = 0; round < 20; ++round) {
    IndexedMinHeap heap(1000);
    std::vector<std::pair<Cost, uint32_t>> expected;
    std::uniform_int_distribution<Cost> cost(0, 1'000'000);
    for (uint32_t key = 0; key < 200; ++key) {
      Cost c = cost(rng);
      heap.InsertOrDecrease(key, c);
      expected.emplace_back(c, key);
    }
    std::sort(expected.begin(), expected.end());
    for (const auto& [c, key] : expected) {
      auto [hc, hk] = heap.ExtractMin();
      EXPECT_EQ(hc, c);
    }
    EXPECT_TRUE(heap.Empty());
  }
}

TEST(ZipfSamplerTest, PmfSumsToOneAndIsMonotone) {
  ZipfSampler zipf(100, 0.8);
  double sum = 0;
  for (size_t i = 0; i < zipf.pmf().size(); ++i) {
    sum += zipf.pmf()[i];
    if (i > 0) {
      EXPECT_LE(zipf.pmf()[i], zipf.pmf()[i - 1]);
    }
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfSamplerTest, SkewGrowsWithExponent) {
  std::mt19937_64 rng(7);
  auto top_share = [&](double s) {
    ZipfSampler zipf(50, s);
    int hits = 0;
    for (int i = 0; i < 20000; ++i) {
      if (zipf.Sample(rng) == 0) ++hits;
    }
    return hits / 20000.0;
  };
  EXPECT_GT(top_share(1.5), top_share(0.3));
}

TEST(ZipfSamplerTest, SamplesWithinRange) {
  ZipfSampler zipf(10, 1.0);
  std::mt19937_64 rng(3);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(zipf.Sample(rng), 10u);
}

TEST(QueryStatsTest, AccumulateAddsFieldsAndDepths) {
  QueryStats a, b;
  a.RecordExamined(0);
  a.RecordExamined(2);
  a.nn_queries = 5;
  b.RecordExamined(2);
  b.RecordExamined(3);
  b.nn_queries = 7;
  a.Accumulate(b);
  EXPECT_EQ(a.examined_routes, 4u);
  EXPECT_EQ(a.nn_queries, 12u);
  ASSERT_EQ(a.examined_per_depth.size(), 4u);
  EXPECT_EQ(a.examined_per_depth[2], 2u);
  EXPECT_EQ(a.examined_per_depth[3], 1u);
}

TEST(QueryStatsTest, OtherTimeNeverNegative) {
  QueryStats s;
  s.total_time_s = 1.0;
  s.nn_time_s = 2.0;  // over-attributed
  EXPECT_GE(s.OtherTimeSeconds(), 0.0);
}

TEST(WallTimerTest, MeasuresElapsedTime) {
  WallTimer t;
  double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;
  EXPECT_GT(sink, 0.0);  // also keeps the loop from being optimized away
  EXPECT_GE(t.ElapsedSeconds(), 0.0);
  EXPECT_GE(t.ElapsedMillis(), t.ElapsedSeconds());
}

TEST(LatencyHistogramTest, EmptyHistogramReportsZeros) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.MeanSeconds(), 0.0);
  EXPECT_EQ(h.PercentileSeconds(50), 0.0);
  EXPECT_EQ(h.P99Millis(), 0.0);
}

TEST(LatencyHistogramTest, PercentilesUseNearestRank) {
  LatencyHistogram h;
  // 1..100 ms, recorded out of order.
  for (int i = 100; i >= 1; --i) h.Record(i * 1e-3);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_NEAR(h.MeanSeconds(), 50.5e-3, 1e-12);
  EXPECT_NEAR(h.MinSeconds(), 1e-3, 1e-12);
  EXPECT_NEAR(h.MaxSeconds(), 100e-3, 1e-12);
  EXPECT_NEAR(h.P50Millis(), 50.0, 1e-9);
  EXPECT_NEAR(h.P95Millis(), 95.0, 1e-9);
  EXPECT_NEAR(h.P99Millis(), 99.0, 1e-9);
  EXPECT_NEAR(h.PercentileSeconds(0), 1e-3, 1e-12);
  EXPECT_NEAR(h.PercentileSeconds(100), 100e-3, 1e-12);
}

TEST(LatencyHistogramTest, SingleSampleIsEveryPercentile) {
  LatencyHistogram h;
  h.Record(2e-3);
  EXPECT_NEAR(h.P50Millis(), 2.0, 1e-9);
  EXPECT_NEAR(h.P99Millis(), 2.0, 1e-9);
  EXPECT_NEAR(h.MeanSeconds(), 2e-3, 1e-12);
}

TEST(LatencyHistogramTest, MergeAndClear) {
  LatencyHistogram a, b;
  a.Record(1e-3);
  b.Record(3e-3);
  b.Record(5e-3);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_NEAR(a.MeanSeconds(), 3e-3, 1e-12);
  EXPECT_NEAR(a.P50Millis(), 3.0, 1e-9);
  a.Clear();
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.MeanSeconds(), 0.0);
}

TEST(LatencyHistogramTest, RecordAfterPercentileReadKeepsOrder) {
  LatencyHistogram h;
  h.Record(5e-3);
  h.Record(1e-3);
  EXPECT_NEAR(h.P50Millis(), 1.0, 1e-9);  // sorts lazily
  h.Record(0.5e-3);                       // must re-sort on next read
  EXPECT_NEAR(h.PercentileSeconds(0), 0.5e-3, 1e-12);
  EXPECT_NEAR(h.P50Millis(), 1.0, 1e-9);
}

TEST(LatencyHistogramTest, CappedReservoirBoundsStorageKeepsExactMoments) {
  // 10k samples of 1..10000 ms through a 100-slot reservoir: count, mean,
  // min, and max stay exact; percentiles become estimates that must still
  // land in the right region of the distribution.
  LatencyHistogram h(/*max_samples=*/100);
  for (int i = 1; i <= 10000; ++i) h.Record(i * 1e-3);
  EXPECT_EQ(h.count(), 10000u);
  EXPECT_NEAR(h.MeanSeconds(), 5000.5e-3, 1e-9);
  EXPECT_NEAR(h.MinSeconds(), 1e-3, 1e-12);
  EXPECT_NEAR(h.MaxSeconds(), 10.0, 1e-12);
  EXPECT_GT(h.PercentileSeconds(50), 3.0);
  EXPECT_LT(h.PercentileSeconds(50), 7.0);
  EXPECT_GT(h.PercentileSeconds(95), h.PercentileSeconds(50));
  h.Clear();
  EXPECT_EQ(h.count(), 0u);
}

TEST(LatencyHistogramTest, SummaryStringsContainPercentiles) {
  LatencyHistogram h;
  h.Record(1e-3);
  EXPECT_NE(h.SummaryString().find("p99_ms="), std::string::npos);
  std::string json = h.SummaryJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
  EXPECT_NE(json.find("\"p95_ms\":"), std::string::npos);
}

TEST(StopwatchAccumulatorTest, AccumulatesDisjointIntervals) {
  StopwatchAccumulator acc;
  acc.Start();
  acc.Stop();
  acc.Start();
  acc.Stop();
  EXPECT_GE(acc.TotalSeconds(), 0.0);
  acc.Clear();
  EXPECT_EQ(acc.TotalSeconds(), 0.0);
}

}  // namespace
}  // namespace kosr
