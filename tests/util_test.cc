#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "src/util/min_heap.h"
#include "src/util/stats.h"
#include "src/util/timer.h"
#include "src/util/zipf.h"

namespace kosr {
namespace {

TEST(IndexedMinHeapTest, ExtractsInPriorityOrder) {
  IndexedMinHeap heap(10);
  heap.InsertOrDecrease(3, 30);
  heap.InsertOrDecrease(1, 10);
  heap.InsertOrDecrease(7, 20);
  EXPECT_EQ(heap.Size(), 3u);
  EXPECT_EQ(heap.ExtractMin(), (std::pair<Cost, uint32_t>{10, 1}));
  EXPECT_EQ(heap.ExtractMin(), (std::pair<Cost, uint32_t>{20, 7}));
  EXPECT_EQ(heap.ExtractMin(), (std::pair<Cost, uint32_t>{30, 3}));
  EXPECT_TRUE(heap.Empty());
}

TEST(IndexedMinHeapTest, DecreaseKeyMovesElementUp) {
  IndexedMinHeap heap(10);
  heap.InsertOrDecrease(0, 100);
  heap.InsertOrDecrease(1, 50);
  EXPECT_TRUE(heap.InsertOrDecrease(0, 10));
  EXPECT_EQ(heap.ExtractMin().second, 0u);
}

TEST(IndexedMinHeapTest, IncreaseIsIgnored) {
  IndexedMinHeap heap(4);
  heap.InsertOrDecrease(2, 5);
  EXPECT_FALSE(heap.InsertOrDecrease(2, 50));
  EXPECT_EQ(heap.PriorityOf(2), 5);
}

TEST(IndexedMinHeapTest, ClearResetsMembership) {
  IndexedMinHeap heap(8);
  heap.InsertOrDecrease(5, 1);
  heap.Clear();
  EXPECT_TRUE(heap.Empty());
  EXPECT_FALSE(heap.Contains(5));
  heap.InsertOrDecrease(5, 2);
  EXPECT_EQ(heap.ExtractMin(), (std::pair<Cost, uint32_t>{2, 5u}));
}

TEST(IndexedMinHeapTest, RandomizedAgainstStdSort) {
  std::mt19937_64 rng(42);
  for (int round = 0; round < 20; ++round) {
    IndexedMinHeap heap(1000);
    std::vector<std::pair<Cost, uint32_t>> expected;
    std::uniform_int_distribution<Cost> cost(0, 1'000'000);
    for (uint32_t key = 0; key < 200; ++key) {
      Cost c = cost(rng);
      heap.InsertOrDecrease(key, c);
      expected.emplace_back(c, key);
    }
    std::sort(expected.begin(), expected.end());
    for (const auto& [c, key] : expected) {
      auto [hc, hk] = heap.ExtractMin();
      EXPECT_EQ(hc, c);
    }
    EXPECT_TRUE(heap.Empty());
  }
}

TEST(ZipfSamplerTest, PmfSumsToOneAndIsMonotone) {
  ZipfSampler zipf(100, 0.8);
  double sum = 0;
  for (size_t i = 0; i < zipf.pmf().size(); ++i) {
    sum += zipf.pmf()[i];
    if (i > 0) {
      EXPECT_LE(zipf.pmf()[i], zipf.pmf()[i - 1]);
    }
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfSamplerTest, SkewGrowsWithExponent) {
  std::mt19937_64 rng(7);
  auto top_share = [&](double s) {
    ZipfSampler zipf(50, s);
    int hits = 0;
    for (int i = 0; i < 20000; ++i) {
      if (zipf.Sample(rng) == 0) ++hits;
    }
    return hits / 20000.0;
  };
  EXPECT_GT(top_share(1.5), top_share(0.3));
}

TEST(ZipfSamplerTest, SamplesWithinRange) {
  ZipfSampler zipf(10, 1.0);
  std::mt19937_64 rng(3);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(zipf.Sample(rng), 10u);
}

TEST(QueryStatsTest, AccumulateAddsFieldsAndDepths) {
  QueryStats a, b;
  a.RecordExamined(0);
  a.RecordExamined(2);
  a.nn_queries = 5;
  b.RecordExamined(2);
  b.RecordExamined(3);
  b.nn_queries = 7;
  a.Accumulate(b);
  EXPECT_EQ(a.examined_routes, 4u);
  EXPECT_EQ(a.nn_queries, 12u);
  ASSERT_EQ(a.examined_per_depth.size(), 4u);
  EXPECT_EQ(a.examined_per_depth[2], 2u);
  EXPECT_EQ(a.examined_per_depth[3], 1u);
}

TEST(QueryStatsTest, OtherTimeNeverNegative) {
  QueryStats s;
  s.total_time_s = 1.0;
  s.nn_time_s = 2.0;  // over-attributed
  EXPECT_GE(s.OtherTimeSeconds(), 0.0);
}

TEST(WallTimerTest, MeasuresElapsedTime) {
  WallTimer t;
  double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;
  EXPECT_GT(sink, 0.0);  // also keeps the loop from being optimized away
  EXPECT_GE(t.ElapsedSeconds(), 0.0);
  EXPECT_GE(t.ElapsedMillis(), t.ElapsedSeconds());
}

TEST(StopwatchAccumulatorTest, AccumulatesDisjointIntervals) {
  StopwatchAccumulator acc;
  acc.Start();
  acc.Stop();
  acc.Start();
  acc.Stop();
  EXPECT_GE(acc.TotalSeconds(), 0.0);
  acc.Clear();
  EXPECT_EQ(acc.TotalSeconds(), 0.0);
}

}  // namespace
}  // namespace kosr
