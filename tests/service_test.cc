#include "src/service/service.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <random>
#include <sstream>
#include <thread>
#include <vector>

#include "src/obs/counters.h"
#include "src/obs/json_reader.h"
#include "src/service/protocol.h"
#include "tests/test_util.h"

namespace kosr::service {
namespace {

/// Line graph 0 - 1 - 2 - 3 (unit weights, both directions), category 0 =
/// {3}, category 1 = {2}. Every optimal route is computable by hand, which
/// makes the stale-cache regressions deterministic.
KosrEngine MakeLineEngine() {
  Graph graph = Graph::FromEdges(
      4, {{0, 1, 1}, {1, 0, 1}, {1, 2, 1}, {2, 1, 1}, {2, 3, 1}, {3, 2, 1}});
  CategoryTable categories(4, 3);
  categories.Add(3, 0);
  categories.Add(2, 1);
  KosrEngine engine(std::move(graph), std::move(categories));
  engine.BuildIndexes();
  return engine;
}

ServiceRequest MakeRequest(VertexId source, VertexId target,
                           CategorySequence sequence, uint32_t k = 1) {
  ServiceRequest request;
  request.query.source = source;
  request.query.target = target;
  request.query.sequence = std::move(sequence);
  request.query.k = k;
  return request;
}

TEST(ServiceTest, SubmitMatchesDirectEngineQuery) {
  auto inst = testing::MakeRandomInstance(60, 320, 4, 4242);
  KosrEngine reference(inst.graph, inst.categories);
  reference.BuildIndexes();
  KosrEngine served(inst.graph, inst.categories);
  served.BuildIndexes();

  ServiceConfig config;
  config.num_workers = 2;
  KosrService service(std::move(served), config);

  std::mt19937_64 rng(11);
  std::uniform_int_distribution<VertexId> pick(0, 59);
  for (int i = 0; i < 12; ++i) {
    ServiceRequest request;
    request.query.source = pick(rng);
    request.query.target = pick(rng);
    request.query.sequence =
        RandomCategorySequence(reference.categories(), 2, rng);
    request.query.k = 3;
    ServiceResponse response = service.Submit(request);
    ASSERT_TRUE(response.ok()) << response.error;
    EXPECT_GE(response.latency_s, 0.0);
    KosrResult expected = reference.Query(request.query, request.options);
    ASSERT_EQ(response.result.routes.size(), expected.routes.size());
    for (size_t j = 0; j < expected.routes.size(); ++j) {
      EXPECT_EQ(response.result.routes[j].cost, expected.routes[j].cost);
      EXPECT_EQ(response.result.routes[j].witness,
                expected.routes[j].witness);
    }
  }
}

TEST(ServiceTest, ConcurrentAsyncSubmissionsAllAnswerCorrectly) {
  auto inst = testing::MakeRandomInstance(60, 320, 4, 777);
  KosrEngine reference(inst.graph, inst.categories);
  reference.BuildIndexes();
  KosrEngine served(inst.graph, inst.categories);
  served.BuildIndexes();

  ServiceConfig config;
  config.num_workers = 4;
  config.queue_capacity = 64;
  KosrService service(std::move(served), config);

  std::mt19937_64 rng(5);
  std::uniform_int_distribution<VertexId> pick(0, 59);
  std::vector<ServiceRequest> requests;
  for (int i = 0; i < 32; ++i) {
    ServiceRequest request;
    request.query.source = pick(rng);
    request.query.target = pick(rng);
    request.query.sequence =
        RandomCategorySequence(reference.categories(), 2, rng);
    request.query.k = 2;
    requests.push_back(std::move(request));
  }
  std::vector<std::future<ServiceResponse>> futures;
  for (const ServiceRequest& request : requests) {
    futures.push_back(service.SubmitAsync(request));
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    ServiceResponse response = futures[i].get();
    ASSERT_TRUE(response.ok()) << response.error;
    KosrResult expected = reference.Query(requests[i].query);
    ASSERT_EQ(response.result.routes.size(), expected.routes.size());
    for (size_t j = 0; j < expected.routes.size(); ++j) {
      EXPECT_EQ(response.result.routes[j].cost, expected.routes[j].cost);
    }
  }
  MetricsSnapshot snapshot = service.Metrics();
  EXPECT_EQ(snapshot.submitted, 32u);
  EXPECT_EQ(snapshot.completed, 32u);
  EXPECT_EQ(snapshot.rejected, 0u);
}

TEST(ServiceTest, RepeatQueryHitsCacheWithIdenticalResult) {
  KosrService service(MakeLineEngine(), {.num_workers = 1});
  ServiceRequest request = MakeRequest(0, 0, {0});
  ServiceResponse cold = service.Submit(request);
  ASSERT_TRUE(cold.ok());
  EXPECT_FALSE(cold.cache_hit);
  ASSERT_EQ(cold.result.routes.size(), 1u);
  EXPECT_EQ(cold.result.routes[0].cost, 6);  // 0 -> 3 -> 0.

  ServiceResponse warm = service.Submit(request);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_EQ(warm.result.routes[0].cost, 6);
  EXPECT_EQ(warm.result.routes[0].witness, cold.result.routes[0].witness);
  EXPECT_EQ(service.cache().stats().hits, 1u);
}

TEST(ServiceTest, AddVertexCategoryInvalidatesStaleRoute) {
  KosrService service(MakeLineEngine(), {.num_workers = 1});
  ServiceRequest request = MakeRequest(0, 0, {0});
  EXPECT_EQ(service.Submit(request).result.routes[0].cost, 6);
  EXPECT_TRUE(service.Submit(request).cache_hit);  // Cached now.

  // Vertex 1 joins category 0: the best route becomes 0 -> 1 -> 0 = 2.
  // Without invalidation the cache would keep serving the stale cost 6.
  service.AddVertexCategory(1, 0);
  ServiceResponse updated = service.Submit(request);
  ASSERT_TRUE(updated.ok());
  EXPECT_FALSE(updated.cache_hit);
  EXPECT_EQ(updated.result.routes[0].cost, 2);
}

TEST(ServiceTest, RemoveVertexCategoryInvalidatesStaleRoute) {
  KosrService service(MakeLineEngine(), {.num_workers = 1});
  service.AddVertexCategory(1, 0);
  ServiceRequest request = MakeRequest(0, 0, {0});
  EXPECT_EQ(service.Submit(request).result.routes[0].cost, 2);
  EXPECT_TRUE(service.Submit(request).cache_hit);

  // Vertex 1 leaves category 0 again: the cached cost-2 route no longer
  // visits a category-0 vertex; the answer must fall back to cost 6.
  service.RemoveVertexCategory(1, 0);
  ServiceResponse updated = service.Submit(request);
  ASSERT_TRUE(updated.ok());
  EXPECT_FALSE(updated.cache_hit);
  EXPECT_EQ(updated.result.routes[0].cost, 6);
}

TEST(ServiceTest, AddOrDecreaseEdgeInvalidatesWholeCache) {
  KosrService service(MakeLineEngine(), {.num_workers = 1});
  ServiceRequest request = MakeRequest(0, 3, {1});
  EXPECT_EQ(service.Submit(request).result.routes[0].cost, 3);  // 0-1-2-3.
  EXPECT_TRUE(service.Submit(request).cache_hit);

  // Shortcut 0 -> 2 of weight 1: the optimal route drops to 1 + 1 = 2.
  service.AddOrDecreaseEdge(0, 2, 1);
  ServiceResponse updated = service.Submit(request);
  ASSERT_TRUE(updated.ok());
  EXPECT_FALSE(updated.cache_hit);
  EXPECT_EQ(updated.result.routes[0].cost, 2);
  EXPECT_GT(service.cache().stats().invalidations, 0u);

  // A replayed no-op update (weight not lower than the current arc) changes
  // no distance and must keep the cache warm.
  EXPECT_TRUE(service.Submit(request).cache_hit);  // updated result cached
  service.AddOrDecreaseEdge(0, 2, 1);
  service.AddOrDecreaseEdge(0, 2, 50);
  EXPECT_TRUE(service.Submit(request).cache_hit);
}

TEST(ServiceTest, SetEdgeWeightIncreaseInvalidatesStaleRoute) {
  KosrService service(MakeLineEngine(), {.num_workers = 1});
  // Shortcut 0 -> 2 of weight 1 makes the best 0 -> [cat 1] -> 3 route
  // 0-2-3 = 2; cache it.
  service.SetEdgeWeight(0, 2, 1);
  ServiceRequest request = MakeRequest(0, 3, {1});
  EXPECT_EQ(service.Submit(request).result.routes[0].cost, 2);
  EXPECT_TRUE(service.Submit(request).cache_hit);

  // Raising the shortcut off the shortest path must drop the stale cost-2
  // route; the answer reverts to 0-1-2-3 = 3.
  EdgeUpdateSummary summary = service.SetEdgeWeight(0, 2, 50).summary;
  EXPECT_TRUE(summary.graph_changed);
  EXPECT_TRUE(summary.labels_changed);
  ServiceResponse updated = service.Submit(request);
  ASSERT_TRUE(updated.ok());
  EXPECT_FALSE(updated.cache_hit);
  EXPECT_EQ(updated.result.routes[0].cost, 3);
}

TEST(ServiceTest, RemoveEdgeInvalidatesStaleRoute) {
  KosrService service(MakeLineEngine(), {.num_workers = 1});
  service.SetEdgeWeight(0, 2, 1);
  ServiceRequest request = MakeRequest(0, 3, {1});
  EXPECT_EQ(service.Submit(request).result.routes[0].cost, 2);
  EXPECT_TRUE(service.Submit(request).cache_hit);

  EdgeUpdateSummary summary = service.RemoveEdge(0, 2).summary;
  EXPECT_TRUE(summary.graph_changed);
  EXPECT_TRUE(summary.labels_changed);
  ServiceResponse updated = service.Submit(request);
  EXPECT_FALSE(updated.cache_hit);
  EXPECT_EQ(updated.result.routes[0].cost, 3);

  EXPECT_THROW(service.SetEdgeWeight(99, 0, 1), std::invalid_argument);
  EXPECT_THROW(service.RemoveEdge(0, 99), std::invalid_argument);
}

TEST(ServiceTest, TargetedInvalidationKeepsCacheWarmOnNoOpUpdates) {
  KosrService service(MakeLineEngine(), {.num_workers = 1});
  ServiceRequest request = MakeRequest(0, 3, {1});
  EXPECT_EQ(service.Submit(request).result.routes[0].cost, 3);
  EXPECT_TRUE(service.Submit(request).cache_hit);

  // Any update to an arc that lies on no shortest path — even inserting
  // one — repairs no label, which certifies no answer changed, so the
  // cache must stay warm throughout.
  EdgeUpdateSummary summary = service.SetEdgeWeight(0, 2, 1000).summary;  // detour in
  EXPECT_TRUE(summary.graph_changed);
  EXPECT_FALSE(summary.labels_changed);
  EXPECT_TRUE(service.Submit(request).cache_hit);
  summary = service.SetEdgeWeight(0, 2, 2000).summary;  // raise it
  EXPECT_TRUE(summary.graph_changed);
  EXPECT_FALSE(summary.labels_changed);
  EXPECT_TRUE(service.Submit(request).cache_hit);  // still warm

  // Removing the irrelevant detour repairs nothing either.
  summary = service.RemoveEdge(0, 2).summary;
  EXPECT_TRUE(summary.graph_changed);
  EXPECT_FALSE(summary.labels_changed);
  EXPECT_TRUE(service.Submit(request).cache_hit);

  // Pure no-ops (absent arc, identical weight) never flush.
  service.RemoveEdge(0, 2);
  service.SetEdgeWeight(0, 1, 1);  // already weight 1
  EXPECT_TRUE(service.Submit(request).cache_hit);
}

// Queries race a live stream of every edge-update flavor through the
// reader/writer engine lock; run under the TSan CI job. Every response must
// be a well-formed answer for *some* engine state the updater passed
// through — here we only assert structural sanity and absence of errors.
TEST(ServiceTest, ConcurrentQueriesDuringEdgeUpdatesAreSafe) {
  auto inst = testing::MakeRandomInstance(50, 240, 3, 90);
  KosrEngine engine(inst.graph, inst.categories);
  engine.BuildIndexes();
  auto edges = engine.graph().ToEdges();

  ServiceConfig config;
  config.num_workers = 4;
  config.queue_capacity = 128;
  KosrService service(std::move(engine), config);

  std::thread updater([&] {
    std::mt19937_64 rng(7);
    for (int i = 0; i < 60; ++i) {
      auto [u, v, w] = edges[rng() % edges.size()];
      switch (i % 4) {
        case 0:
          service.SetEdgeWeight(u, v, w + 1 + static_cast<Weight>(rng() % 40));
          break;
        case 1:
          service.RemoveEdge(u, v);
          break;
        case 2:
          service.AddOrDecreaseEdge(u, v, std::max<Weight>(1, w / 2));
          break;
        case 3:
          service.SetEdgeWeight(u, v, w);  // restore
          break;
      }
    }
  });

  std::mt19937_64 rng(13);
  std::uniform_int_distribution<VertexId> pick(0, 49);
  for (int i = 0; i < 120; ++i) {
    ServiceRequest request;
    request.query.source = pick(rng);
    request.query.target = pick(rng);
    request.query.sequence =
        RandomCategorySequence(inst.categories, 2, rng);
    request.query.k = 2;
    request.options.reconstruct_paths = true;
    ServiceResponse response = service.Submit(request);
    ASSERT_TRUE(response.ok()) << response.error;
    for (const SequencedRoute& route : response.result.routes) {
      EXPECT_GE(route.cost, 0);
      EXPECT_EQ(route.witness.size(), request.query.sequence.size() + 2);
    }
  }
  updater.join();
}

TEST(ServiceTest, BackpressureRejectsWhenQueueFull) {
  ServiceConfig config;
  config.num_workers = 2;
  config.queue_capacity = 4;
  config.start_workers = false;  // Fill the queue deterministically.
  KosrService service(MakeLineEngine(), config);

  std::vector<std::future<ServiceResponse>> futures;
  for (int i = 0; i < 6; ++i) {
    futures.push_back(service.SubmitAsync(MakeRequest(0, 0, {0})));
  }
  EXPECT_EQ(service.queue_depth(), 4u);
  // The overflow futures resolved immediately with kRejected.
  for (int i = 4; i < 6; ++i) {
    ASSERT_EQ(futures[i].wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    EXPECT_EQ(futures[i].get().status, ResponseStatus::kRejected);
  }
  service.Start();
  for (int i = 0; i < 4; ++i) {
    ServiceResponse response = futures[i].get();
    ASSERT_TRUE(response.ok()) << response.error;
    EXPECT_EQ(response.result.routes[0].cost, 6);
  }
  MetricsSnapshot snapshot = service.Metrics();
  EXPECT_EQ(snapshot.submitted, 6u);
  EXPECT_EQ(snapshot.completed, 4u);
  EXPECT_EQ(snapshot.rejected, 2u);
}

TEST(ServiceTest, StopResolvesPendingRequestsWithShutdown) {
  ServiceConfig config;
  config.start_workers = false;
  KosrService service(MakeLineEngine(), config);
  auto f1 = service.SubmitAsync(MakeRequest(0, 0, {0}));
  auto f2 = service.SubmitAsync(MakeRequest(0, 3, {1}));
  service.Stop();
  EXPECT_EQ(f1.get().status, ResponseStatus::kShutdown);
  EXPECT_EQ(f2.get().status, ResponseStatus::kShutdown);
  // Submissions after Stop() are refused the same way.
  EXPECT_EQ(service.SubmitAsync(MakeRequest(0, 0, {0})).get().status,
            ResponseStatus::kShutdown);
}

TEST(ServiceTest, DynamicUpdatesRejectOutOfRangeArguments) {
  // The engine's update entry points index unchecked; the service fronts
  // untrusted input (the serve protocol) and must throw instead of
  // corrupting the long-lived process.
  KosrService service(MakeLineEngine(), {.num_workers = 1});
  EXPECT_THROW(service.AddVertexCategory(99, 0), std::invalid_argument);
  EXPECT_THROW(service.AddVertexCategory(0, 99), std::invalid_argument);
  EXPECT_THROW(service.RemoveVertexCategory(99, 0), std::invalid_argument);
  EXPECT_THROW(service.RemoveVertexCategory(0, 99), std::invalid_argument);
  EXPECT_THROW(service.AddOrDecreaseEdge(99, 0, 1), std::invalid_argument);
  EXPECT_THROW(service.AddOrDecreaseEdge(0, 99, 1), std::invalid_argument);
  // The service still works afterwards.
  EXPECT_EQ(service.Submit(MakeRequest(0, 0, {0})).result.routes[0].cost, 6);
}

TEST(ServiceTest, OutOfRangeQueryVerticesAreErrorsNotCrashes) {
  KosrService service(MakeLineEngine(), {.num_workers = 1});
  ServiceResponse response = service.Submit(MakeRequest(9999, 0, {0}));
  EXPECT_EQ(response.status, ResponseStatus::kError);
  response = service.Submit(MakeRequest(0, 9999, {0}));
  EXPECT_EQ(response.status, ResponseStatus::kError);
}

TEST(ServiceTest, DefaultTimeBudgetTruncatesAndSkipsCache) {
  ServiceConfig config;
  config.num_workers = 1;
  config.default_time_budget_s = 1e-12;  // Expires before any work.
  KosrService service(MakeLineEngine(), config);
  ServiceRequest request = MakeRequest(0, 0, {0});
  ServiceResponse response = service.Submit(request);
  ASSERT_TRUE(response.ok());
  EXPECT_TRUE(response.result.stats.timed_out);
  // Truncated answers must not be cached: the repeat recomputes.
  EXPECT_FALSE(service.Submit(request).cache_hit);
  // An explicit per-request budget overrides the default.
  request.options.time_budget_s = 60;
  response = service.Submit(request);
  ASSERT_TRUE(response.ok());
  EXPECT_FALSE(response.result.stats.timed_out);
  EXPECT_EQ(response.result.routes[0].cost, 6);
}

TEST(ServiceTest, EngineErrorBecomesErrorResponse) {
  KosrService service(MakeLineEngine(), {.num_workers = 1});
  ServiceRequest bad = MakeRequest(0, 0, {0}, /*k=*/0);  // Engine throws.
  ServiceResponse response = service.Submit(bad);
  EXPECT_EQ(response.status, ResponseStatus::kError);
  EXPECT_FALSE(response.error.empty());
  EXPECT_EQ(service.Metrics().errors, 1u);
}

TEST(ServiceTest, MetricsSnapshotReportsPerMethodHistograms) {
  KosrService service(MakeLineEngine(), {.num_workers = 1});
  ServiceRequest request = MakeRequest(0, 0, {0});
  service.Submit(request);
  request.options.algorithm = Algorithm::kPruning;
  service.Submit(request);

  MetricsSnapshot snapshot = service.Metrics();
  EXPECT_EQ(snapshot.completed, 2u);
  ASSERT_TRUE(snapshot.per_method.count("SK"));
  ASSERT_TRUE(snapshot.per_method.count("PK"));
  EXPECT_EQ(snapshot.per_method.at("SK").count(), 1u);
  std::string json = snapshot.ToJson();
  EXPECT_NE(json.find("\"qps\""), std::string::npos);
  EXPECT_NE(json.find("\"SK\""), std::string::npos);
  EXPECT_NE(json.find("\"p99_ms\""), std::string::npos);

  service.ResetMetrics();
  EXPECT_EQ(service.Metrics().completed, 0u);
}

TEST(ServiceTest, EngineCountersAndStageSpansFlowIntoMetrics) {
  if (!obs::Enabled()) GTEST_SKIP() << "KOSR_OBS_OFF=1 in the environment";
  ServiceConfig config;
  config.num_workers = 1;
  config.stage_sample_every = 1;  // sample the engine phases of every query
  KosrService service(MakeLineEngine(), config);
  service.Submit(MakeRequest(0, 0, {0}));
  service.Submit(MakeRequest(0, 3, {1}));

  MetricsSnapshot snapshot = service.Metrics();
  // Hop-label queries ran, so the label-query counter must have moved (and
  // with it the merge-join work it implies).
  EXPECT_GT(snapshot.counters[static_cast<size_t>(
                obs::Counter::kLabelQueries)],
            0u);
  // Queue-wait is recorded for every completed request (there is no
  // lock-wait stage: queries run against a pinned snapshot and never block);
  // the sampled engine phases for at least the cache misses.
  using obs::Stage;
  EXPECT_EQ(snapshot.stages[static_cast<size_t>(Stage::kQueueWait)].count(),
            2u);
  EXPECT_GE(snapshot.stages[static_cast<size_t>(Stage::kNn)].count(), 1u);
  EXPECT_GE(snapshot.stages[static_cast<size_t>(Stage::kEnumerate)].count(),
            1u);
  // Gauges read zero at rest: nothing queued, nothing in flight.
  EXPECT_EQ(snapshot.queue_depth, 0u);
  EXPECT_EQ(snapshot.in_flight, 0u);

  // The JSON surface carries all of it and stays parseable.
  obs::JsonValue v = obs::ParseJson(snapshot.ToJson());
  EXPECT_GT(v.At("counters").At("label_queries").number, 0.0);
  EXPECT_EQ(v.At("gauges").At("queue_depth").number, 0.0);
  EXPECT_EQ(v.At("stages").At("queue_wait").At("count").number, 2.0);
  EXPECT_TRUE(v.At("slow_queries").IsArray());
}

TEST(ServiceTest, SlowQueryLogRetainsMostRecentTraces) {
  if (!obs::Enabled()) GTEST_SKIP() << "KOSR_OBS_OFF=1 in the environment";
  ServiceConfig config;
  config.num_workers = 1;
  config.slow_query_threshold_s = 1e-9;  // everything is "slow"
  config.slow_log_capacity = 4;
  config.stage_sample_every = 1;
  KosrService service(MakeLineEngine(), config);
  for (VertexId source = 0; source < 4; ++source) {
    service.Submit(MakeRequest(source, 0, {0}));
  }
  service.Submit(MakeRequest(0, 3, {1}));
  service.Submit(MakeRequest(1, 3, {1}));

  MetricsSnapshot snapshot = service.Metrics();
  // Six queries tripped the threshold; the ring keeps the last four, in
  // chronological order.
  ASSERT_EQ(snapshot.slow_queries.size(), 4u);
  EXPECT_EQ(snapshot.slow_queries.back().source, 1u);
  EXPECT_EQ(snapshot.slow_queries.back().target, 3u);
  for (const obs::SlowQueryEntry& entry : snapshot.slow_queries) {
    EXPECT_EQ(entry.method, "SK");
    EXPECT_GE(entry.latency_s, 0.0);
    EXPECT_TRUE(entry.stages.Recorded(obs::Stage::kQueueWait));
  }
  obs::JsonValue v = obs::ParseJson(snapshot.ToJson());
  EXPECT_EQ(v.At("slow_queries").items.size(), 4u);

  // Reset drops the retained traces with everything else.
  service.ResetMetrics();
  EXPECT_TRUE(service.Metrics().slow_queries.empty());
}

TEST(ServiceTest, SlowQueryLogStaysEmptyWithoutAThreshold) {
  KosrService service(MakeLineEngine(), {.num_workers = 1});
  service.Submit(MakeRequest(0, 0, {0}));
  EXPECT_TRUE(service.Metrics().slow_queries.empty());
}

// Reset vs Record vs Snapshot from three threads: the regression here was
// Reset() zeroing the request counters outside the histogram mutex, letting
// a concurrent Snapshot pair fresh counters with a stale uptime clock.
// TSan (the CI build-tsan job runs this binary) would flag the old layout.
TEST(MetricsRegistryTest, ResetRacesCleanlyWithRecordAndSnapshot) {
  MetricsRegistry registry;
  registry.SetSlowLogCapacity(2);
  std::atomic<bool> stop{false};
  std::atomic<bool> saw_incoherent{false};
  std::thread recorder([&] {
    obs::EngineCounters delta;
    delta.Add(obs::Counter::kLabelQueries, 3);
    obs::StageTimes stages;
    stages.Set(obs::Stage::kQueueWait, 1e-6);
    obs::SlowQueryEntry entry;
    entry.method = "SK";
    while (!stop.load(std::memory_order_relaxed)) {
      registry.RecordSubmitted();
      registry.RecordCompleted(Algorithm::kStar, NnMode::kHopLabel, 1e-4);
      registry.AddEngineCounters(delta);
      registry.RecordStages(stages);
      registry.RecordSlowQuery(entry);
    }
  });
  std::thread snapshotter([&] {
    CacheStats cache;
    while (!stop.load(std::memory_order_relaxed)) {
      MetricsSnapshot snap = registry.Snapshot(cache, 1, 1, SnapshotGauges{});
      if (snap.uptime_s < 0 || snap.qps < 0 ||
          snap.slow_queries.size() > 2) {
        saw_incoherent.store(true);
      }
    }
  });
  for (int i = 0; i < 2000; ++i) registry.Reset();
  stop.store(true);
  recorder.join();
  snapshotter.join();
  EXPECT_FALSE(saw_incoherent.load());
}

// ---------------------------------------------------------------------------
// Newline protocol (src/service/protocol.h).
// ---------------------------------------------------------------------------

TEST(ProtocolTest, ParseMethodCoversAllSixMethods) {
  Algorithm algorithm;
  NnMode nn_mode;
  ASSERT_TRUE(ParseMethod("sk", &algorithm, &nn_mode));
  EXPECT_EQ(algorithm, Algorithm::kStar);
  EXPECT_EQ(nn_mode, NnMode::kHopLabel);
  ASSERT_TRUE(ParseMethod("kpne-dij", &algorithm, &nn_mode));
  EXPECT_EQ(algorithm, Algorithm::kKpne);
  EXPECT_EQ(nn_mode, NnMode::kDijkstra);
  ASSERT_TRUE(ParseMethod("pk-dij", &algorithm, &nn_mode));
  EXPECT_EQ(algorithm, Algorithm::kPruning);
  EXPECT_FALSE(ParseMethod("bfs", &algorithm, &nn_mode));
  EXPECT_FALSE(ParseMethod("", &algorithm, &nn_mode));
}

TEST(ProtocolTest, HandleRequestLineAnswersEachCommand) {
  KosrService service(MakeLineEngine(), {.num_workers = 1});
  EXPECT_EQ(HandleRequestLine(service, "PING"), "OK PONG");
  EXPECT_EQ(HandleRequestLine(service, "QUIT"), "OK BYE");

  std::string query = HandleRequestLine(service, "QUERY 0 0 0 1");
  EXPECT_EQ(query.rfind("OK ROUTES n=1 costs=6", 0), 0u) << query;

  std::string add_cat = HandleRequestLine(service, "ADD_CAT 1 0");
  EXPECT_EQ(add_cat.rfind("OK UPDATED version=", 0), 0u) << add_cat;
  std::string updated = HandleRequestLine(service, "QUERY 0 0 0 1");
  EXPECT_EQ(updated.rfind("OK ROUTES n=1 costs=2", 0), 0u) << updated;
  std::string remove_cat = HandleRequestLine(service, "REMOVE_CAT 1 0");
  EXPECT_EQ(remove_cat.rfind("OK UPDATED version=", 0), 0u) << remove_cat;
  // Directed shortcut 0 -> 3 of weight 1: route 0 -> 3 -> 0 = 1 + 3 = 4.
  std::string add_edge = HandleRequestLine(service, "ADD_EDGE 0 3 1");
  EXPECT_EQ(add_edge.rfind("OK UPDATED changed=1", 0), 0u) << add_edge;
  std::string shortcut = HandleRequestLine(service, "QUERY 0 0 0 1");
  EXPECT_EQ(shortcut.rfind("OK ROUTES n=1 costs=4", 0), 0u) << shortcut;

  std::string metrics = HandleRequestLine(service, "METRICS");
  EXPECT_EQ(metrics.rfind("OK METRICS {", 0), 0u) << metrics;
  EXPECT_NE(metrics.find("\"cache\""), std::string::npos);
}

TEST(ProtocolTest, MetricsPayloadIsParseableAndComplete) {
  KosrService service(MakeLineEngine(), {.num_workers = 1});
  std::string query = HandleRequestLine(service, "QUERY 0 0 0 1");
  ASSERT_EQ(query.rfind("OK ROUTES", 0), 0u) << query;

  std::string line = HandleRequestLine(service, "METRICS");
  const std::string prefix = "OK METRICS ";
  ASSERT_EQ(line.rfind(prefix, 0), 0u) << line;
  obs::JsonValue v = obs::ParseJson(line.substr(prefix.size()));
  for (const char* key :
       {"uptime_s", "gauges", "cache", "methods", "stages", "counters",
        "slow_queries"}) {
    EXPECT_NE(v.Find(key), nullptr) << "missing " << key;
  }
  EXPECT_EQ(v.At("completed").number, 1.0);
  if (obs::Enabled()) {
    // The protocol layer timed the response formatting of the QUERY above.
    EXPECT_GE(v.At("stages").At("serialize").At("count").number, 1.0);
  }
}

TEST(ProtocolTest, SetAndRemoveEdgeVerbsReportRepairSummaries) {
  KosrService service(MakeLineEngine(), {.num_workers = 1});
  // Raise the 0 -> 3 shortcut in, off, and out of the shortest path; the
  // response reports whether the graph changed and how many label vectors
  // the repair touched.
  std::string set = HandleRequestLine(service, "SET_EDGE 0 3 1");
  EXPECT_EQ(set.rfind("OK UPDATED changed=1 labels=", 0), 0u) << set;
  std::string query = HandleRequestLine(service, "QUERY 0 0 0 1");
  EXPECT_EQ(query.rfind("OK ROUTES n=1 costs=4", 0), 0u) << query;

  // Increase: the shortcut leaves the shortest path, answers revert.
  std::string raised = HandleRequestLine(service, "SET_EDGE 0 3 500");
  EXPECT_EQ(raised.rfind("OK UPDATED changed=1 labels=", 0), 0u) << raised;
  EXPECT_NE(raised.rfind("OK UPDATED changed=1 labels=0 ", 0), 0u) << raised;
  query = HandleRequestLine(service, "QUERY 0 0 0 1");
  EXPECT_EQ(query.rfind("OK ROUTES n=1 costs=6", 0), 0u) << query;

  // Raising an off-shortest-path arc repairs nothing (labels=0), and
  // setting the same weight again is a full no-op (changed=0).
  std::string off_path = HandleRequestLine(service, "SET_EDGE 0 3 600");
  EXPECT_EQ(off_path.rfind("OK UPDATED changed=1 labels=0 version=", 0), 0u)
      << off_path;
  std::string same = HandleRequestLine(service, "SET_EDGE 0 3 600");
  EXPECT_EQ(same.rfind("OK UPDATED changed=0 labels=0 version=", 0), 0u)
      << same;

  // Removal; removing again is a no-op.
  std::string removed = HandleRequestLine(service, "REMOVE_EDGE 0 3");
  EXPECT_EQ(removed.rfind("OK UPDATED changed=1 labels=0 version=", 0), 0u)
      << removed;
  std::string noop = HandleRequestLine(service, "REMOVE_EDGE 0 3");
  EXPECT_EQ(noop.rfind("OK UPDATED changed=0 labels=0 version=", 0), 0u)
      << noop;
  query = HandleRequestLine(service, "QUERY 0 0 0 1");
  EXPECT_EQ(query.rfind("OK ROUTES n=1 costs=6", 0), 0u) << query;
}

TEST(ProtocolTest, MalformedRequestsReturnErrNotThrow) {
  KosrService service(MakeLineEngine(), {.num_workers = 1});
  EXPECT_EQ(HandleRequestLine(service, "FROBNICATE").rfind("ERR ", 0), 0u);
  EXPECT_EQ(HandleRequestLine(service, "QUERY 0 0").rfind("ERR ", 0), 0u);
  EXPECT_EQ(HandleRequestLine(service, "QUERY x y 0 1").rfind("ERR ", 0), 0u);
  EXPECT_EQ(HandleRequestLine(service, "QUERY 0 0 0 1 bfs").rfind("ERR ", 0),
            0u);
  EXPECT_EQ(HandleRequestLine(service, "ADD_CAT 1").rfind("ERR ", 0), 0u);
  // Engine-level failure (k = 0) surfaces as ERR, and the loop survives.
  EXPECT_EQ(HandleRequestLine(service, "QUERY 0 0 0 0").rfind("ERR ", 0), 0u);
  // Out-of-range ids must come back as ERR, never crash the server.
  EXPECT_EQ(HandleRequestLine(service, "QUERY 9999 0 0 1").rfind("ERR ", 0),
            0u);
  EXPECT_EQ(HandleRequestLine(service, "ADD_CAT 9999 0").rfind("ERR ", 0),
            0u);
  EXPECT_EQ(HandleRequestLine(service, "ADD_CAT 0 999").rfind("ERR ", 0), 0u);
  EXPECT_EQ(HandleRequestLine(service, "REMOVE_CAT 9999 0").rfind("ERR ", 0),
            0u);
  EXPECT_EQ(HandleRequestLine(service, "ADD_EDGE 9999 0 1").rfind("ERR ", 0),
            0u);
  EXPECT_EQ(HandleRequestLine(service, "SET_EDGE 9999 0 1").rfind("ERR ", 0),
            0u);
  EXPECT_EQ(HandleRequestLine(service, "SET_EDGE 0 1").rfind("ERR ", 0), 0u);
  EXPECT_EQ(HandleRequestLine(service, "SET_EDGE 0 1 -4").rfind("ERR ", 0),
            0u);
  EXPECT_EQ(HandleRequestLine(service, "REMOVE_EDGE 0").rfind("ERR ", 0), 0u);
  EXPECT_EQ(HandleRequestLine(service, "REMOVE_EDGE 0 9999").rfind("ERR ", 0),
            0u);
  // Signed tokens must be rejected, not wrapped through unsigned parsing
  // (a weight of "-5" must not become a ~4-billion-weight edge).
  EXPECT_EQ(HandleRequestLine(service, "ADD_EDGE 0 1 -5").rfind("ERR ", 0),
            0u);
  EXPECT_EQ(HandleRequestLine(service, "QUERY 0 0 0 -1").rfind("ERR ", 0),
            0u);
  EXPECT_EQ(HandleRequestLine(service, "QUERY 0 0 0,-1 1").rfind("ERR ", 0),
            0u);
  EXPECT_EQ(HandleRequestLine(service, "QUERY 0 0 0,, 1").rfind("ERR ", 0),
            0u);
  EXPECT_EQ(
      HandleRequestLine(service, "QUERY 0 0 0 99999999999").rfind("ERR ", 0),
      0u);
}

TEST(ProtocolTest, ServeLoopAnswersLinesInOrderAndStopsAtQuit) {
  KosrService service(MakeLineEngine(), {.num_workers = 1});
  std::istringstream in(
      "# warm-up comment\n"
      "\n"
      "PING\n"
      "QUERY 0 0 0 1\n"
      "QUERY 0 0 0 1\n"
      "QUIT\n"
      "PING\n");  // After QUIT: must not be served.
  std::ostringstream out;
  uint64_t handled = RunServeLoop(service, in, out);
  EXPECT_EQ(handled, 4u);
  std::istringstream lines(out.str());
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line, "OK PONG");
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line.rfind("OK ROUTES n=1 costs=6 cached=0", 0), 0u) << line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line.rfind("OK ROUTES n=1 costs=6 cached=1", 0), 0u) << line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line, "OK BYE");
  EXPECT_FALSE(std::getline(lines, line));
}

}  // namespace
}  // namespace kosr::service
