// Adversarial wire-format suite for the TCP serving front-end (ISSUE 10):
// torn frames at every byte boundary, lying length prefixes, unknown
// verbs, mid-frame disconnects, slow-loris writers, pipeline floods, and
// slow readers. The server must answer or close every connection
// deterministically and never crash, hang, or leak — the suite runs under
// ASan/UBSan and TSan in CI.

#include <gtest/gtest.h>
#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/core/engine.h"
#include "src/net/client.h"
#include "src/net/frame.h"
#include "src/net/server.h"
#include "src/service/protocol.h"
#include "src/service/service.h"
#include "src/util/timer.h"
#include "tests/test_util.h"

namespace kosr {
namespace {

using net::ClientResponse;
using net::FramedClient;
using net::FrameBuffer;
using net::NetServer;
using net::ParsedFrame;
using net::ServerOptions;

service::ServiceConfig DefaultConfig() {
  service::ServiceConfig config;
  config.num_workers = 2;
  config.queue_capacity = 256;
  config.cache_capacity = 64;
  return config;
}

/// In-process server over a small random instance on an ephemeral port.
struct ServerFixture {
  explicit ServerFixture(ServerOptions options = {},
                         service::ServiceConfig config = DefaultConfig()) {
    auto inst = testing::MakeRandomInstance(60, 240, 4, 1234);
    KosrEngine engine(inst.graph, inst.categories);
    engine.BuildIndexes();
    service =
        std::make_unique<service::KosrService>(std::move(engine), config);
    options.host = "127.0.0.1";
    options.port = 0;
    server = std::make_unique<NetServer>(*service, options);
    server->Start();
  }

  std::unique_ptr<FramedClient> Connect() {
    return std::make_unique<FramedClient>("127.0.0.1", server->port());
  }

  // Declaration order matters: the server must be destroyed (and drained)
  // before the service it serves.
  std::unique_ptr<service::KosrService> service;
  std::unique_ptr<NetServer> server;
};

bool WaitFor(const std::function<bool()>& condition, double timeout_s = 5) {
  WallTimer timer;
  while (timer.ElapsedSeconds() < timeout_s) {
    if (condition()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return condition();
}

/// "key=value" token out of a protocol response line ("" when absent).
std::string Token(const std::string& line, const std::string& key) {
  size_t pos = line.find(key);
  if (pos == std::string::npos) return "";
  pos += key.size();
  size_t end = line.find(' ', pos);
  return line.substr(pos, (end == std::string::npos ? line.size() : end) -
                              pos);
}

std::string EncodedFrame(uint64_t request_id, uint8_t verb,
                         std::string_view payload) {
  std::string wire;
  net::AppendFrame(wire, request_id, verb, payload);
  return wire;
}

// --- FrameBuffer unit coverage (no sockets) -------------------------------

TEST(FrameBufferTest, DecodesManyFramesFromOneAppend) {
  std::string wire = EncodedFrame(1, net::kVerbLine, "PING") +
                     EncodedFrame(2, net::kVerbLine, "") +
                     EncodedFrame(3, 0x7f, "payload");
  FrameBuffer buffer;
  buffer.Append(wire.data(), wire.size());
  ParsedFrame frame;
  std::string error;
  ASSERT_EQ(buffer.Pop(&frame, &error), FrameBuffer::PopResult::kFrame);
  EXPECT_EQ(frame.request_id, 1u);
  EXPECT_EQ(frame.payload, "PING");
  ASSERT_EQ(buffer.Pop(&frame, &error), FrameBuffer::PopResult::kFrame);
  EXPECT_EQ(frame.request_id, 2u);
  EXPECT_EQ(frame.payload, "");
  ASSERT_EQ(buffer.Pop(&frame, &error), FrameBuffer::PopResult::kFrame);
  EXPECT_EQ(frame.request_id, 3u);
  EXPECT_EQ(frame.code, 0x7f);
  EXPECT_EQ(frame.payload, "payload");
  EXPECT_EQ(buffer.Pop(&frame, &error), FrameBuffer::PopResult::kNeedMore);
  EXPECT_FALSE(buffer.HasPartial());
}

TEST(FrameBufferTest, ReassemblesOneByteAppends) {
  const std::string wire = EncodedFrame(77, net::kVerbLine, "METRICS");
  FrameBuffer buffer;
  ParsedFrame frame;
  std::string error;
  for (size_t i = 0; i + 1 < wire.size(); ++i) {
    buffer.Append(&wire[i], 1);
    EXPECT_EQ(buffer.Pop(&frame, &error), FrameBuffer::PopResult::kNeedMore);
    EXPECT_TRUE(buffer.HasPartial());
  }
  buffer.Append(&wire[wire.size() - 1], 1);
  ASSERT_EQ(buffer.Pop(&frame, &error), FrameBuffer::PopResult::kFrame);
  EXPECT_EQ(frame.request_id, 77u);
  EXPECT_EQ(frame.payload, "METRICS");
}

TEST(FrameBufferTest, LyingLengthPoisonsTheStream) {
  for (uint32_t lying_len : {0u, 1u, 8u, 5000u, 0xffffffffu}) {
    FrameBuffer buffer(4096);
    std::string wire = EncodedFrame(123, net::kVerbLine, "PING");
    // Overwrite the little-endian length field with the lie.
    for (int i = 0; i < 4; ++i) {
      wire[i] = static_cast<char>((lying_len >> (8 * i)) & 0xff);
    }
    buffer.Append(wire.data(), wire.size());
    ParsedFrame frame;
    std::string error;
    ASSERT_EQ(buffer.Pop(&frame, &error), FrameBuffer::PopResult::kBad)
        << "len=" << lying_len;
    EXPECT_EQ(frame.request_id, 123u);  // best-effort id for correlation
    EXPECT_NE(error.find("bad frame length"), std::string::npos);
    // Poisoned: later pops keep failing, later appends are dropped.
    buffer.Append(wire.data(), wire.size());
    EXPECT_EQ(buffer.Pop(&frame, &error), FrameBuffer::PopResult::kBad);
  }
}

// --- Socket behaviour ------------------------------------------------------

TEST(NetServerTest, PingAndQueryMatchDirectSubmit) {
  ServerFixture fx;
  auto client = fx.Connect();
  const uint64_t ping_id = client->SendLine("PING");
  auto pong = client->Recv();
  ASSERT_TRUE(pong.has_value());
  EXPECT_EQ(pong->request_id, ping_id);
  EXPECT_EQ(pong->status, net::kStatusOk);
  EXPECT_EQ(pong->payload, "OK PONG");

  const std::string line = "QUERY 0 59 0,1 3";
  service::ServiceRequest request;
  std::string parse_error;
  ASSERT_TRUE(service::ParseQueryLine(line, &request, &parse_error));
  const std::string direct =
      FormatQueryResponse(*fx.service, fx.service->Submit(request));

  const uint64_t query_id = client->SendLine(line);
  auto response = client->Recv();
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->request_id, query_id);
  EXPECT_EQ(response->status, net::kStatusOk);
  EXPECT_EQ(Token(response->payload, "costs="), Token(direct, "costs="));
  EXPECT_EQ(Token(response->payload, "version="), Token(direct, "version="));
}

TEST(NetServerTest, TornFramesAtEveryByteBoundary) {
  ServerFixture fx;
  const std::string wire = EncodedFrame(42, net::kVerbLine, "PING");
  for (size_t split = 1; split < wire.size(); ++split) {
    auto client = fx.Connect();
    client->SendRaw(std::string_view(wire).substr(0, split));
    // Give the server time to read the torn prefix, and prove it does not
    // answer a half frame.
    EXPECT_FALSE(client->Poll(0.02)) << "split=" << split;
    client->SendRaw(std::string_view(wire).substr(split));
    auto response = client->Recv();
    ASSERT_TRUE(response.has_value()) << "split=" << split;
    EXPECT_EQ(response->request_id, 42u);
    EXPECT_EQ(response->payload, "OK PONG");
  }
  EXPECT_GT(fx.server->gauges().partial_reads, 0u);
}

TEST(NetServerTest, MidFrameDisconnectAtEveryByteBoundary) {
  ServerFixture fx;
  const std::string wire = EncodedFrame(7, net::kVerbLine, "METRICS");
  for (size_t split = 1; split < wire.size(); ++split) {
    auto client = fx.Connect();
    client->SendRaw(std::string_view(wire).substr(0, split));
    // Destructor closes mid-frame; the server must just drop the session.
  }
  // Server alive and the sessions reaped.
  auto probe = fx.Connect();
  probe->SendLine("PING");
  auto pong = probe->Recv();
  ASSERT_TRUE(pong.has_value());
  EXPECT_EQ(pong->payload, "OK PONG");
  probe.reset();
  EXPECT_TRUE(WaitFor(
      [&] { return fx.server->gauges().connections_open == 0; }));
}

TEST(NetServerTest, SlowLorisOneBytePerWrite) {
  ServerFixture fx;
  auto client = fx.Connect();
  const std::string wire = EncodedFrame(9, net::kVerbLine, "QUERY 0 59 0 2");
  for (char byte : wire) {
    client->SendRaw(std::string_view(&byte, 1));
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  auto response = client->Recv();
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->request_id, 9u);
  EXPECT_EQ(response->payload.rfind("OK ROUTES", 0), 0u) << response->payload;

  // A second loris gives up halfway through; the server must survive.
  auto quitter = fx.Connect();
  for (size_t i = 0; i < wire.size() / 2; ++i) {
    quitter->SendRaw(std::string_view(&wire[i], 1));
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  quitter.reset();
  client->SendLine("PING");
  auto pong = client->Recv();
  ASSERT_TRUE(pong.has_value());
  EXPECT_EQ(pong->payload, "OK PONG");
}

TEST(NetServerTest, LyingLengthPrefixGetsBadFrameThenClose) {
  ServerOptions options;
  options.max_frame_bytes = 4096;
  ServerFixture fx(options);
  for (uint32_t lying_len : {0u, 1u, 8u, 4097u, 0xffffffffu}) {
    auto client = fx.Connect();
    std::string wire = EncodedFrame(555, net::kVerbLine, "PING");
    for (int i = 0; i < 4; ++i) {
      wire[i] = static_cast<char>((lying_len >> (8 * i)) & 0xff);
    }
    client->SendRaw(wire);
    auto response = client->Recv();
    ASSERT_TRUE(response.has_value()) << "len=" << lying_len;
    EXPECT_EQ(response->status, net::kStatusBadFrame);
    EXPECT_EQ(response->request_id, 555u);
    EXPECT_FALSE(client->Recv().has_value()) << "len=" << lying_len;  // EOF
  }
  EXPECT_GE(fx.server->gauges().bad_frames, 5u);
}

TEST(NetServerTest, EmptyPayloadIsAnErrNotACrash) {
  ServerFixture fx;
  auto client = fx.Connect();
  const uint64_t id = client->SendFrame(net::kVerbLine, "");
  auto response = client->Recv();
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->request_id, id);
  EXPECT_EQ(response->status, net::kStatusOk);
  EXPECT_EQ(response->payload, "ERR empty request");
  client->SendLine("PING");
  EXPECT_EQ(client->Recv()->payload, "OK PONG");
}

TEST(NetServerTest, UnknownVerbKeepsTheConnection) {
  ServerFixture fx;
  auto client = fx.Connect();
  client->SendFrameWithId(31, 0x7f, "whatever");
  auto response = client->Recv();
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->request_id, 31u);
  EXPECT_EQ(response->status, net::kStatusBadRequest);
  client->SendLine("PING");
  EXPECT_EQ(client->Recv()->payload, "OK PONG");
}

TEST(NetServerTest, UnknownCommandAndBadQuerySurfaceAsErrLines) {
  ServerFixture fx;
  auto client = fx.Connect();
  client->SendLine("FROBNICATE 1 2 3");
  EXPECT_EQ(client->Recv()->payload, "ERR unknown command: FROBNICATE");
  client->SendLine("QUERY not numbers at all");
  auto response = client->Recv();
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, net::kStatusOk);
  EXPECT_EQ(response->payload.rfind("ERR ", 0), 0u) << response->payload;
}

TEST(NetServerTest, PipelineCapRejectsExcessFrames) {
  ServerOptions options;
  options.max_pipeline = 4;
  ServerFixture fx(options);
  auto client = fx.Connect();
  // One blob so the server parses the whole burst in one read pass and the
  // cap engages before any completion drains.
  std::string blob;
  constexpr int kBurst = 64;
  for (int i = 0; i < kBurst; ++i) {
    net::AppendFrame(blob, 1000 + i, net::kVerbLine, "QUERY 0 59 0,1 3");
  }
  client->SendRaw(blob);
  int ok = 0, rejected = 0;
  std::vector<bool> answered(kBurst, false);
  for (int i = 0; i < kBurst; ++i) {
    auto response = client->Recv();
    ASSERT_TRUE(response.has_value()) << "response " << i;
    ASSERT_GE(response->request_id, 1000u);
    ASSERT_LT(response->request_id, 1000u + kBurst);
    size_t idx = response->request_id - 1000;
    EXPECT_FALSE(answered[idx]) << "duplicate response for " << idx;
    answered[idx] = true;
    if (response->status == net::kStatusRejected) {
      EXPECT_EQ(response->payload, "pipeline full");
      ++rejected;
    } else {
      EXPECT_EQ(response->payload.rfind("OK ROUTES", 0), 0u);
      ++ok;
    }
  }
  EXPECT_EQ(ok + rejected, kBurst);
  EXPECT_GE(ok, 4);
  EXPECT_GE(rejected, 1);
  EXPECT_EQ(fx.server->gauges().rejected_frames,
            static_cast<uint64_t>(rejected));
  client->SendLine("PING");  // the connection survived the flood
  EXPECT_EQ(client->Recv()->payload, "OK PONG");
}

TEST(NetServerTest, ServiceQueueFullSurfacesAsRejectedFrames) {
  service::ServiceConfig config = DefaultConfig();
  config.queue_capacity = 2;
  config.start_workers = false;  // queue fills deterministically
  ServerFixture fx({}, config);
  auto client = fx.Connect();
  std::string blob;
  constexpr int kBurst = 8;
  for (int i = 0; i < kBurst; ++i) {
    net::AppendFrame(blob, 2000 + i, net::kVerbLine, "QUERY 0 59 0,1 3");
  }
  client->SendRaw(blob);
  // Capacity 2 and no workers: exactly kBurst - 2 bounce immediately.
  int rejected = 0;
  for (int i = 0; i < kBurst - 2; ++i) {
    auto response = client->Recv();
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(response->status, net::kStatusRejected);
    EXPECT_EQ(response->payload, "queue full");
    ++rejected;
  }
  EXPECT_EQ(rejected, kBurst - 2);
  // Start the workers; the two queued queries complete late.
  fx.service->Start();
  for (int i = 0; i < 2; ++i) {
    auto response = client->Recv();
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(response->status, net::kStatusOk);
    EXPECT_EQ(response->payload.rfind("OK ROUTES", 0), 0u);
  }
}

TEST(NetServerTest, SlowReaderIsClosedAtTheWriteBufferCap) {
  ServerOptions options;
  options.max_write_buffer_bytes = 1024;
  options.max_pipeline = 2048;
  ServerFixture fx(options);
  auto client = fx.Connect();
  // Keep the kernel from absorbing the flood: a tiny receive buffer closes
  // the TCP window early, so the responses back up in the server's
  // user-space write buffer where the cap is enforced.
  const int rcvbuf = 4096;
  ASSERT_EQ(setsockopt(client->fd(), SOL_SOCKET, SO_RCVBUF, &rcvbuf,
                       sizeof(rcvbuf)),
            0);
  // METRICS responses are KBs each and execute inline; a client that never
  // reads must be disconnected once the server-side buffer blows the cap,
  // not buffered forever.
  std::string blob;
  for (int i = 0; i < 512; ++i) {
    net::AppendFrame(blob, 3000 + i, net::kVerbLine, "METRICS");
  }
  client->SendRaw(blob);
  // Never read: the window closes, responses back up server-side, and the
  // server must drop the session once the cap is blown (observable as the
  // open-connections gauge returning to zero — reading here would drain
  // the window and defeat the test).
  EXPECT_TRUE(WaitFor(
      [&] { return fx.server->gauges().connections_open == 0; }, 10));
  auto probe = fx.Connect();
  probe->SendLine("PING");
  EXPECT_EQ(probe->Recv()->payload, "OK PONG");
}

TEST(NetServerTest, FourConnectionsPipelineOutOfOrder) {
  ServerFixture fx;
  // Acceptance criterion: >= 4 concurrent pipelined connections with
  // out-of-order completion correlated by request_id. ExchangePipelined
  // asserts the correlation; costs are cross-checked against direct
  // Submit afterwards.
  std::vector<std::string> lines;
  for (int i = 0; i < 32; ++i) {
    lines.push_back("QUERY " + std::to_string(i % 30) + " " +
                    std::to_string(59 - (i % 20)) + " 0,1 3");
  }
  std::vector<std::vector<ClientResponse>> per_conn(4);
  std::vector<std::thread> threads;
  for (int c = 0; c < 4; ++c) {
    threads.emplace_back([&fx, &lines, &per_conn, c] {
      FramedClient client("127.0.0.1", fx.server->port());
      per_conn[c] = net::ExchangePipelined(client, lines, 16);
    });
  }
  for (std::thread& t : threads) t.join();
  for (int c = 0; c < 4; ++c) {
    ASSERT_EQ(per_conn[c].size(), lines.size());
    for (size_t i = 0; i < lines.size(); ++i) {
      service::ServiceRequest request;
      std::string parse_error;
      ASSERT_TRUE(service::ParseQueryLine(lines[i], &request, &parse_error));
      const std::string direct =
          FormatQueryResponse(*fx.service, fx.service->Submit(request));
      EXPECT_EQ(Token(per_conn[c][i].payload, "costs="),
                Token(direct, "costs="))
          << "conn " << c << " line " << i;
    }
  }
}

TEST(NetServerTest, QuitAnswersPipelinedQueriesBeforeClosing) {
  ServerFixture fx;
  auto client = fx.Connect();
  std::string blob;
  constexpr int kQueries = 8;
  for (int i = 0; i < kQueries; ++i) {
    net::AppendFrame(blob, 100 + i, net::kVerbLine, "QUERY 0 59 0,1 3");
  }
  net::AppendFrame(blob, 999, net::kVerbLine, "QUIT");
  client->SendRaw(blob);
  int bye = 0, routes = 0;
  for (int i = 0; i < kQueries + 1; ++i) {
    auto response = client->Recv();
    ASSERT_TRUE(response.has_value()) << "frame " << i;
    if (response->request_id == 999) {
      EXPECT_EQ(response->payload, "OK BYE");
      ++bye;
    } else {
      EXPECT_EQ(response->payload.rfind("OK ROUTES", 0), 0u);
      ++routes;
    }
  }
  EXPECT_EQ(bye, 1);
  EXPECT_EQ(routes, kQueries);
  EXPECT_FALSE(client->Recv().has_value());  // then EOF, nothing dropped
}

TEST(NetServerTest, ConnectionsBeyondTheCapSeeImmediateEof) {
  ServerOptions options;
  options.max_connections = 2;
  ServerFixture fx(options);
  auto c1 = fx.Connect();
  auto c2 = fx.Connect();
  c1->SendLine("PING");
  c2->SendLine("PING");
  EXPECT_EQ(c1->Recv()->payload, "OK PONG");
  EXPECT_EQ(c2->Recv()->payload, "OK PONG");
  auto c3 = fx.Connect();
  EXPECT_FALSE(c3->Recv().has_value());  // accepted, instantly closed
  c1->SendLine("PING");  // survivors unaffected
  EXPECT_EQ(c1->Recv()->payload, "OK PONG");
}

TEST(NetServerTest, ShutdownDrainsInFlightPipelinedQueries) {
  ServerFixture fx;
  auto client = fx.Connect();
  // Establish the session first: a connection still sitting in the listen
  // backlog is legitimately discarded by drain (it was never accepted).
  client->SendLine("PING");
  ASSERT_EQ(client->Recv()->payload, "OK PONG");
  std::string blob;
  constexpr int kQueries = 16;
  for (int i = 0; i < kQueries; ++i) {
    net::AppendFrame(blob, 500 + i, net::kVerbLine, "QUERY 0 59 0,1 3");
  }
  client->SendRaw(blob);
  fx.server->Shutdown();  // graceful drain: everything accepted is answered
  std::vector<bool> answered(kQueries, false);
  for (int i = 0; i < kQueries; ++i) {
    auto response = client->Recv();
    ASSERT_TRUE(response.has_value()) << "response " << i;
    ASSERT_GE(response->request_id, 500u);
    size_t idx = response->request_id - 500;
    ASSERT_LT(idx, answered.size());
    EXPECT_FALSE(answered[idx]);
    answered[idx] = true;
    EXPECT_EQ(response->payload.rfind("OK ROUTES", 0), 0u);
  }
  EXPECT_FALSE(client->Recv().has_value());  // drained, then closed
}

TEST(NetServerTest, ConnectionChurnLeavesNoSessionsBehind) {
  ServerFixture fx;
  for (int i = 0; i < 40; ++i) {
    auto client = fx.Connect();
    if (i % 2 == 0) {
      client->SendLine("PING");
      EXPECT_EQ(client->Recv()->payload, "OK PONG");
    } else {
      // Half-written frame, then vanish.
      client->SendRaw(std::string_view("\x0d\x00\x00", 3));
    }
  }
  EXPECT_TRUE(WaitFor([&] {
    auto g = fx.server->gauges();
    return g.connections_open == 0 && g.in_flight_queries == 0;
  }));
  EXPECT_GE(fx.server->gauges().connections_accepted, 40u);
}

TEST(NetServerTest, MetricsJsonCarriesTheNetBlock) {
  ServerFixture fx;
  auto client = fx.Connect();
  client->SendLine("QUERY 0 59 0,1 3");
  ASSERT_TRUE(client->Recv().has_value());
  client->SendLine("METRICS");
  auto response = client->Recv();
  ASSERT_TRUE(response.has_value());
  const std::string& json = response->payload;
  EXPECT_NE(json.find("\"net\":{\"enabled\":true"), std::string::npos);
  EXPECT_NE(json.find("\"connections_open\":1"), std::string::npos);
  EXPECT_NE(json.find("\"frames_in\":"), std::string::npos);
  EXPECT_NE(json.find("\"bytes_out\":"), std::string::npos);
}

}  // namespace
}  // namespace kosr
