#include "src/nn/find_nn.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/graph/generators.h"
#include "src/nn/inverted_label_index.h"
#include "tests/test_util.h"

namespace kosr {
namespace {

// Reference: category members sorted by dis(v, .), unreachable excluded.
std::vector<NnResult> BruteForceNn(const Graph& graph,
                                   const CategoryTable& cats, CategoryId c,
                                   VertexId v) {
  auto dist = DijkstraAllDistances(graph, v);
  std::vector<NnResult> out;
  for (VertexId m : cats.Members(c)) {
    if (dist[m] < kInfCost) out.push_back({m, dist[m]});
  }
  std::sort(out.begin(), out.end(), [](const NnResult& a, const NnResult& b) {
    return a.dist != b.dist ? a.dist < b.dist : a.vertex < b.vertex;
  });
  return out;
}

TEST(FindNnTest, Figure1Example4And5) {
  // Paper Example 4: NN of s in MA is a at cost 8. Example 5: the 2nd
  // nearest neighbor of s in MA is c at cost 10.
  Figure1 fig = MakeFigure1();
  HubLabeling hl;
  hl.Build(fig.graph);
  auto il = InvertedLabelIndex::Build(hl, fig.categories.Members(Figure1::MA));
  FindNnCursor cursor(&hl, &il, Figure1::s, 1, nullptr);
  QueryStats stats;
  auto first = cursor.Get(1, &stats);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->vertex, Figure1::a);
  EXPECT_EQ(first->dist, 8);
  auto second = cursor.Get(2, &stats);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->vertex, Figure1::c);
  EXPECT_EQ(second->dist, 10);
  EXPECT_FALSE(cursor.Get(3, &stats).has_value());
}

TEST(FindNnTest, MatchesBruteForceOnRandomGraphs) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    auto inst = testing::MakeRandomInstance(60, 240, 4, seed);
    HubLabeling hl;
    hl.Build(inst.graph);
    for (CategoryId c = 0; c < 4; ++c) {
      auto il = InvertedLabelIndex::Build(hl, inst.categories.Members(c));
      for (VertexId v = 0; v < 60; v += 7) {
        auto expected = BruteForceNn(inst.graph, inst.categories, c, v);
        FindNnCursor cursor(&hl, &il, v, 1, nullptr);
        QueryStats stats;
        for (size_t x = 1; x <= expected.size(); ++x) {
          auto got = cursor.Get(static_cast<uint32_t>(x), &stats);
          ASSERT_TRUE(got.has_value()) << "x=" << x;
          EXPECT_EQ(got->dist, expected[x - 1].dist)
              << "seed=" << seed << " c=" << c << " v=" << v << " x=" << x;
        }
        EXPECT_FALSE(
            cursor.Get(static_cast<uint32_t>(expected.size()) + 1, &stats)
                .has_value());
      }
    }
  }
}

TEST(FindNnTest, CachedHitsAreNotCounted) {
  Figure1 fig = MakeFigure1();
  HubLabeling hl;
  hl.Build(fig.graph);
  auto il = InvertedLabelIndex::Build(hl, fig.categories.Members(Figure1::MA));
  FindNnCursor cursor(&hl, &il, Figure1::s, 1, nullptr);
  QueryStats stats;
  cursor.Get(1, &stats);
  uint64_t after_first = stats.nn_queries;
  EXPECT_EQ(after_first, 1u);
  cursor.Get(1, &stats);  // NL hit
  EXPECT_EQ(stats.nn_queries, after_first);
  cursor.Get(2, &stats);
  EXPECT_EQ(stats.nn_queries, after_first + 1);
}

TEST(FindNnTest, SelfMembershipAtDistanceZero) {
  // A vertex that belongs to the category is its own nearest neighbor.
  auto inst = testing::MakeRandomInstance(30, 150, 3, 7);
  HubLabeling hl;
  hl.Build(inst.graph);
  VertexId v = 11;
  CategoryId c = inst.categories.CategoriesOf(v)[0];
  auto il = InvertedLabelIndex::Build(hl, inst.categories.Members(c));
  FindNnCursor cursor(&hl, &il, v, 1, nullptr);
  auto first = cursor.Get(1, nullptr);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->vertex, v);
  EXPECT_EQ(first->dist, 0);
}

TEST(FindNnTest, FilterSkipsIneligibleMembers) {
  Figure1 fig = MakeFigure1();
  HubLabeling hl;
  hl.Build(fig.graph);
  auto il = InvertedLabelIndex::Build(hl, fig.categories.Members(Figure1::MA));
  SlotFilter only_c = [](uint32_t, VertexId v) { return v == Figure1::c; };
  FindNnCursor cursor(&hl, &il, Figure1::s, 1, &only_c);
  auto first = cursor.Get(1, nullptr);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->vertex, Figure1::c);
  EXPECT_FALSE(cursor.Get(2, nullptr).has_value());
}

TEST(HopLabelNnProviderTest, DestinationSlot) {
  Figure1 fig = MakeFigure1();
  HubLabeling hl;
  hl.Build(fig.graph);
  auto il_ma =
      InvertedLabelIndex::Build(hl, fig.categories.Members(Figure1::MA));
  HopLabelNnProvider provider(&hl, {&il_ma}, Figure1::t);
  QueryStats stats;
  // Slot 2 = destination (|C| = 1 here).
  auto r = provider.FindNN(Figure1::d, 2, 1, &stats);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->vertex, Figure1::t);
  EXPECT_EQ(r->dist, 4);
  EXPECT_FALSE(provider.FindNN(Figure1::d, 2, 2, &stats).has_value());
}

TEST(InvertedLabelIndexTest, Figure1TableVShape) {
  // Table V: IL(MA) lists category members a and c through matching hubs;
  // looking up s's out-hubs must reveal a at 8 and c at 10.
  Figure1 fig = MakeFigure1();
  HubLabeling hl;
  hl.Build(fig.graph);
  auto il = InvertedLabelIndex::Build(hl, fig.categories.Members(Figure1::MA));
  EXPECT_GT(il.num_lists(), 0u);
  EXPECT_GT(il.total_entries(), 0u);
  // Every list is sorted by distance.
  for (uint32_t rank = 0; rank < hl.num_vertices(); ++rank) {
    auto entries = il.Entries(rank);
    for (size_t i = 1; i < entries.size(); ++i) {
      EXPECT_LE(entries[i - 1].dist, entries[i].dist);
    }
  }
}

TEST(InvertedLabelIndexTest, AddRemoveMemberKeepsAnswersExact) {
  auto inst = testing::MakeRandomInstance(40, 180, 2, 12);
  HubLabeling hl;
  hl.Build(inst.graph);
  CategoryId c = 0;
  auto il = InvertedLabelIndex::Build(hl, inst.categories.Members(c));

  // Move vertex 17 into category 0 dynamically.
  VertexId joined = 17;
  if (!inst.categories.Has(joined, c)) {
    inst.categories.Add(joined, c);
    il.AddMember(hl, joined);
  }
  for (VertexId v : {0u, 9u, 23u}) {
    auto expected = BruteForceNn(inst.graph, inst.categories, c, v);
    FindNnCursor cursor(&hl, &il, v, 1, nullptr);
    for (size_t x = 1; x <= expected.size(); ++x) {
      auto got = cursor.Get(static_cast<uint32_t>(x), nullptr);
      ASSERT_TRUE(got.has_value());
      EXPECT_EQ(got->dist, expected[x - 1].dist);
    }
  }

  // And back out.
  inst.categories.Remove(joined, c);
  il.RemoveMember(hl, joined);
  for (VertexId v : {0u, 9u}) {
    auto expected = BruteForceNn(inst.graph, inst.categories, c, v);
    FindNnCursor cursor(&hl, &il, v, 1, nullptr);
    for (size_t x = 1; x <= expected.size(); ++x) {
      auto got = cursor.Get(static_cast<uint32_t>(x), nullptr);
      ASSERT_TRUE(got.has_value());
      EXPECT_EQ(got->dist, expected[x - 1].dist);
      EXPECT_NE(got->vertex, joined);
    }
  }
}

TEST(InvertedLabelIndexTest, SerializeRoundTrip) {
  auto inst = testing::MakeRandomInstance(30, 120, 2, 3);
  HubLabeling hl;
  hl.Build(inst.graph);
  auto il = InvertedLabelIndex::Build(hl, inst.categories.Members(0));
  std::stringstream buffer;
  il.Serialize(buffer);
  auto copy = InvertedLabelIndex::Deserialize(buffer);
  EXPECT_EQ(copy.total_entries(), il.total_entries());
  EXPECT_EQ(copy.num_lists(), il.num_lists());
}

}  // namespace
}  // namespace kosr
