#include "src/labeling/disk_store.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "src/core/engine.h"
#include "src/graph/generators.h"
#include "tests/test_util.h"

namespace kosr {
namespace {

class DiskStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("kosr_disk_test_" + std::to_string(::getpid()));
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

TEST_F(DiskStoreTest, SkDbMatchesInMemorySk) {
  auto inst = testing::MakeRandomInstance(50, 260, 4, 600);
  KosrEngine engine(inst.graph, inst.categories);
  engine.BuildIndexes();
  engine.WriteDiskStore(dir_.string());

  DiskLabelStore store(dir_.string());
  EXPECT_EQ(store.num_vertices(), 50u);
  EXPECT_EQ(store.num_categories(), 4u);

  for (uint64_t qseed = 0; qseed < 4; ++qseed) {
    KosrQuery query{static_cast<VertexId>(qseed), 49, {0, 1, 2}, 4};
    auto mem = engine.Query(query);
    auto disk = KosrEngine::QueryFromDisk(store, query);
    ASSERT_EQ(disk.routes.size(), mem.routes.size()) << "q=" << qseed;
    for (size_t i = 0; i < mem.routes.size(); ++i) {
      EXPECT_EQ(disk.routes[i].cost, mem.routes[i].cost);
      EXPECT_EQ(disk.routes[i].witness, mem.routes[i].witness);
    }
    // Same search trajectory: identical examined-route counts (the paper
    // notes SK and SK-DB share these counters).
    EXPECT_EQ(disk.stats.examined_routes, mem.stats.examined_routes);
    EXPECT_EQ(disk.stats.nn_queries, mem.stats.nn_queries);
  }
}

TEST_F(DiskStoreTest, SeekCountMatchesLayout) {
  auto inst = testing::MakeRandomInstance(30, 150, 5, 601);
  KosrEngine engine(inst.graph, inst.categories);
  engine.BuildIndexes();
  engine.WriteDiskStore(dir_.string());
  DiskLabelStore store(dir_.string());
  auto ctx = store.Load(0, 29, {0, 1, 2});
  // |C| category loads + Lout(s) + Lin(t).
  EXPECT_EQ(ctx.disk_seeks, 5u);
  EXPECT_EQ(ctx.slot_indexes.size(), 3u);
  EXPECT_GE(ctx.load_seconds, 0.0);
}

TEST_F(DiskStoreTest, KpneAndPruningAlsoRunFromDisk) {
  auto inst = testing::MakeRandomInstance(40, 200, 3, 602);
  KosrEngine engine(inst.graph, inst.categories);
  engine.BuildIndexes();
  engine.WriteDiskStore(dir_.string());
  DiskLabelStore store(dir_.string());
  KosrQuery query{1, 38, {0, 2}, 3};
  auto mem = engine.Query(query);
  for (Algorithm algo : {Algorithm::kKpne, Algorithm::kPruning}) {
    KosrOptions options;
    options.algorithm = algo;
    auto disk = KosrEngine::QueryFromDisk(store, query, options);
    ASSERT_EQ(disk.routes.size(), mem.routes.size());
    for (size_t i = 0; i < mem.routes.size(); ++i) {
      EXPECT_EQ(disk.routes[i].cost, mem.routes[i].cost);
    }
  }
}

TEST_F(DiskStoreTest, OpenMissingDirectoryThrows) {
  EXPECT_THROW(DiskLabelStore("/nonexistent/kosr_store"), std::runtime_error);
}

TEST_F(DiskStoreTest, RejectsDijkstraMode) {
  auto inst = testing::MakeRandomInstance(20, 80, 2, 603);
  KosrEngine engine(inst.graph, inst.categories);
  engine.BuildIndexes();
  engine.WriteDiskStore(dir_.string());
  DiskLabelStore store(dir_.string());
  KosrOptions options;
  options.nn_mode = NnMode::kDijkstra;
  EXPECT_THROW(
      KosrEngine::QueryFromDisk(store, {0, 19, {0}, 1}, options),
      std::invalid_argument);
}

}  // namespace
}  // namespace kosr
